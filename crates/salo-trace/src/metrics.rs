//! Mergeable metrics: atomic counters, gauges, and fixed-boundary
//! log₂-bucket histograms.
//!
//! The histogram is the load-bearing piece: bucket boundaries are fixed
//! (log₂ octaves subdivided into 16 linear sub-buckets, values below 32
//! exact), so merging two histograms is element-wise addition and is
//! therefore *exact* — the merged quantile equals the quantile of the union
//! of the underlying samples to within one bucket width (≤ 1/16 of an
//! octave, i.e. ≤ 6.25% relative error). This replaces cross-worker
//! reservoir/quantile blending, which distorts merged tail quantiles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of linear sub-buckets per octave, as a power of two.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave (16).
const SUB: u64 = 1 << SUB_BITS;
/// Values below this are stored in exact unit-width buckets.
const EXACT_LIMIT: u64 = 2 * SUB; // 32
/// Total bucket count: 32 exact + 16 per octave for exponents 5..=63.
pub const NUM_BUCKETS: usize = EXACT_LIMIT as usize + (63 - SUB_BITS as usize) * SUB as usize;

/// Bucket index for a value. Fixed boundaries: identical across all
/// histogram instances, which is what makes merges exact.
pub fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let sub = (v >> (exp - SUB_BITS)) & (SUB - 1);
    EXACT_LIMIT as usize + ((exp - SUB_BITS - 1) as usize) * SUB as usize + sub as usize
}

/// Inclusive `(low, high)` value bounds of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < EXACT_LIMIT as usize {
        return (index as u64, index as u64);
    }
    let rel = index - EXACT_LIMIT as usize;
    let exp = SUB_BITS + 1 + (rel / SUB as usize) as u32;
    let sub = (rel % SUB as usize) as u64;
    let width = 1u64 << (exp - SUB_BITS);
    let lo = (SUB + sub) << (exp - SUB_BITS);
    (lo, lo + (width - 1))
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge with a high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    high_water: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`, updating the high-water mark.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative), updating the high-water mark.
    pub fn add(&self, delta: i64) -> i64 {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.high_water.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set/reached.
    pub fn high_water(&self) -> i64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// A fixed-boundary log₂-bucket histogram over `u64` samples
/// (conventionally nanoseconds). Thread-safe; recording is one atomic add.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in seconds (stored as whole nanoseconds).
    pub fn record_secs(&self, secs: f64) {
        self.record((secs.max(0.0) * 1e9).round() as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into a plain-data snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`LogHistogram`]. Merging two snapshots is exact
/// (element-wise bucket addition); quantiles are bucket-exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts ([`NUM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: vec![0; NUM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl HistogramSnapshot {
    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Records one sample directly into the snapshot — the
    /// single-threaded accumulation path (an owned histogram inside a
    /// `&mut` recorder); the atomic [`LogHistogram`] covers concurrent
    /// recording.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a duration in seconds (stored as whole nanoseconds).
    pub fn record_secs(&mut self, secs: f64) {
        self.record((secs.max(0.0) * 1e9).round() as u64);
    }

    /// Exact merge: the result is identical to a histogram built from the
    /// union of both sample sets.
    pub fn merged_with(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = self.buckets.clone();
        buckets.resize(NUM_BUCKETS, 0);
        for (b, o) in buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        HistogramSnapshot {
            buckets,
            count: self.count + other.count,
            // Saturate rather than wrap: durations near u64::MAX are
            // nonsense inputs, but they must not panic a debug build.
            sum: self.sum.saturating_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// The `q`-quantile (`0.0..=1.0`), bucket-exact: returns the upper bound
    /// of the bucket containing the rank-⌈q·n⌉ sample, clamped to the
    /// observed min/max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return hi.clamp(lo.max(self.min), self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A named registry of counters, gauges, and histograms.
///
/// Handles are `Arc`s: fetch once on a hot path, then update lock-free.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<LogHistogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-global registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Gets or creates the named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics registry poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Gets or creates the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics registry poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Gets or creates the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<LogHistogram> {
        let mut map = self.histograms.lock().expect("metrics registry poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Snapshot of every counter whose name starts with `prefix`, as
    /// `(name, value)` pairs in name order. This is how structured
    /// consumers (e.g. the serving report's per-tenant section) recover
    /// families of dynamically named counters (`serve.tenant.3.requests`)
    /// without the registry having to know about the family.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        let map = self.counters.lock().expect("metrics registry poisoned");
        map.range(prefix.to_owned()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    /// Removes every metric. Intended for tests and examples that want a
    /// clean slate on the global registry.
    pub fn reset(&self) {
        self.counters.lock().expect("metrics registry poisoned").clear();
        self.gauges.lock().expect("metrics registry poisoned").clear();
        self.histograms.lock().expect("metrics registry poisoned").clear();
    }

    /// Renders all metrics as an aligned text table.
    pub fn export_table(&self) -> String {
        let mut out = String::new();
        let counters = self.counters.lock().expect("metrics registry poisoned");
        if !counters.is_empty() {
            out.push_str("counters\n");
            for (name, c) in counters.iter() {
                out.push_str(&format!("  {:<44} {:>14}\n", name, c.get()));
            }
        }
        drop(counters);
        let gauges = self.gauges.lock().expect("metrics registry poisoned");
        if !gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, g) in gauges.iter() {
                out.push_str(&format!(
                    "  {:<44} {:>14}  (high water {})\n",
                    name,
                    g.get(),
                    g.high_water()
                ));
            }
        }
        drop(gauges);
        let histograms = self.histograms.lock().expect("metrics registry poisoned");
        if !histograms.is_empty() {
            out.push_str("histograms (ns)\n");
            for (name, h) in histograms.iter() {
                let s = h.snapshot();
                if s.is_empty() {
                    out.push_str(&format!("  {:<44} (empty)\n", name));
                } else {
                    out.push_str(&format!(
                        "  {:<44} count {:>8}  mean {:>12.0}  p50 {:>12}  p99 {:>12}  max {:>12}\n",
                        name,
                        s.count,
                        s.mean(),
                        s.quantile(0.50),
                        s.quantile(0.99),
                        s.max
                    ));
                }
            }
        }
        out
    }

    /// Renders all metrics as a JSON object. Histograms include their
    /// non-zero buckets as `[index, count]` pairs so external consumers can
    /// merge them exactly.
    pub fn export_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        {
            let counters = self.counters.lock().expect("metrics registry poisoned");
            let mut first = true;
            for (name, c) in counters.iter() {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"{}\":{}", json_escape(name), c.get()));
            }
        }
        out.push_str("},\"gauges\":{");
        {
            let gauges = self.gauges.lock().expect("metrics registry poisoned");
            let mut first = true;
            for (name, g) in gauges.iter() {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\"{}\":{{\"value\":{},\"high_water\":{}}}",
                    json_escape(name),
                    g.get(),
                    g.high_water()
                ));
            }
        }
        out.push_str("},\"histograms\":{");
        {
            let histograms = self.histograms.lock().expect("metrics registry poisoned");
            let mut first = true;
            for (name, h) in histograms.iter() {
                if !first {
                    out.push(',');
                }
                first = false;
                let s = h.snapshot();
                let buckets: Vec<String> = s
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| format!("[{i},{c}]"))
                    .collect();
                out.push_str(&format!(
                    "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{},\"buckets\":[{}]}}",
                    json_escape(name),
                    s.count,
                    s.sum,
                    if s.count == 0 { 0 } else { s.min },
                    s.max,
                    s.quantile(0.50),
                    s.quantile(0.99),
                    buckets.join(",")
                ));
            }
        }
        out.push_str("}}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_bounds_are_consistent() {
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotonic at {v}");
            prev = i;
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} outside bounds of its bucket");
        }
        for shift in 5..63 {
            let v = 1u64 << shift;
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi);
            assert!(i < NUM_BUCKETS);
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_width_is_within_one_sixteenth_octave() {
        for v in [100u64, 1_000, 50_000, 1_000_000, u64::MAX / 2] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            // Width ≤ lo/16 → worst-case relative quantile error 6.25%.
            assert!(hi - lo <= lo / SUB, "bucket too wide at {v}: [{lo},{hi}]");
        }
    }

    #[test]
    fn quantile_matches_exact_rank_within_one_bucket() {
        let h = LogHistogram::new();
        let mut samples: Vec<u64> = (0..1000).map(|i| (i * i) % 700_000 + 1).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * 1000f64).ceil() as usize).clamp(1, 1000) - 1;
            let exact = samples[rank];
            let approx = snap.quantile(q);
            assert_eq!(
                bucket_index(exact),
                bucket_index(approx),
                "q={q}: exact {exact} vs bucket-quantile {approx}"
            );
        }
    }

    #[test]
    fn merge_is_exact() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let union = LogHistogram::new();
        for i in 0..500u64 {
            let v = i * 37 + 5;
            a.record(v);
            union.record(v);
        }
        for i in 0..300u64 {
            let v = i * 91 + 1_000_000;
            b.record(v);
            union.record(v);
        }
        assert_eq!(a.snapshot().merged_with(&b.snapshot()), union.snapshot());
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::new();
        g.add(5);
        g.add(3);
        g.add(-6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 8);
    }

    #[test]
    fn counters_with_prefix_selects_the_family_in_name_order() {
        let r = MetricsRegistry::new();
        r.counter("serve.tenant.1.requests").add(4);
        r.counter("serve.tenant.1.rejections").add(1);
        r.counter("serve.tenant.2.requests").add(9);
        r.counter("serve.requests").add(13); // outside the family
        let family = r.counters_with_prefix("serve.tenant.");
        assert_eq!(
            family,
            vec![
                ("serve.tenant.1.rejections".to_owned(), 1),
                ("serve.tenant.1.requests".to_owned(), 4),
                ("serve.tenant.2.requests".to_owned(), 9),
            ]
        );
        assert!(r.counters_with_prefix("gateway.").is_empty());
    }

    #[test]
    fn registry_exports_table_and_json() {
        let r = MetricsRegistry::new();
        r.counter("serve.requests").add(12);
        r.gauge("serve.queue_depth").set(3);
        r.histogram("serve.latency_ns").record(1500);
        let table = r.export_table();
        assert!(table.contains("serve.requests"));
        assert!(table.contains("12"));
        assert!(table.contains("serve.latency_ns"));
        let json = r.export_json();
        assert!(json.contains("\"serve.requests\":12"));
        assert!(json.contains("\"high_water\":3"));
        assert!(json.contains("\"count\":1"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
