//! Property tests for the tracer and the mergeable histogram: spans stay
//! well-nested under arbitrary open/close programs, histogram merging is
//! exactly the histogram of the union, quantiles stay within one bucket
//! width of the true order statistic, and ring overflow drops the oldest
//! events with an exact count.

use proptest::prelude::*;
use salo_trace::{bucket_bounds, bucket_index, LogHistogram, SpanRecord, Tracer};

/// Replays `program` as span opens/closes on a fresh tracer: byte value
/// `0..=1 (mod 3)` opens a nested span (depth-capped), anything else
/// closes the innermost one. Returns the recorded spans.
fn run_span_program(program: &[u8]) -> Vec<SpanRecord> {
    let tracer = Tracer::new(4096);
    tracer.set_enabled(true);
    let mut open = Vec::new();
    for (i, &b) in program.iter().enumerate() {
        if b % 3 < 2 && open.len() < 8 {
            open.push(tracer.span_with("prop.span", "test", i as u64));
        } else {
            drop(open.pop());
        }
    }
    // Close leftovers innermost-first; `drop(open)` would drop the Vec
    // front-to-back, ending parents before their still-open children.
    while let Some(g) = open.pop() {
        drop(g);
    }
    tracer.snapshot().spans
}

proptest! {
    #[test]
    fn spans_are_well_nested(program in prop::collection::vec(any::<u8>(), 1..64)) {
        let spans = run_span_program(&program);
        // Every open eventually closed, so every span was recorded.
        let opens = program.iter().scan(0usize, |depth, &b| {
            let open = b % 3 < 2 && *depth < 8;
            *depth = if open { *depth + 1 } else { depth.saturating_sub(1) };
            Some(open)
        }).filter(|&o| o).count();
        prop_assert_eq!(spans.len(), opens);
        let by_id = |id: u64| spans.iter().find(|s| s.id == id);
        for s in &spans {
            // A child lies entirely within its parent's interval.
            if s.parent != 0 {
                let p = by_id(s.parent).expect("parent was recorded");
                prop_assert!(s.start_ns >= p.start_ns, "child starts before parent");
                prop_assert!(
                    s.start_ns + s.dur_ns <= p.start_ns + p.dur_ns,
                    "child {} outlives parent {}", s.id, p.id
                );
            }
            // Same-thread spans never partially overlap: nested or disjoint.
            for t in &spans {
                if s.id == t.id || s.tid != t.tid {
                    continue;
                }
                let (s0, s1) = (s.start_ns, s.start_ns + s.dur_ns);
                let (t0, t1) = (t.start_ns, t.start_ns + t.dur_ns);
                let nested = (s0 >= t0 && s1 <= t1) || (t0 >= s0 && t1 <= s1);
                let disjoint = s1 <= t0 || t1 <= s0;
                prop_assert!(nested || disjoint, "partial overlap {:?} vs {:?}", s, t);
            }
        }
    }

    #[test]
    fn histogram_merge_is_histogram_of_union(
        // Shift random words down by a random bit count so samples span
        // every magnitude; a minimum shift of 8 keeps the total sum of
        // 128 samples below u64::MAX so `sum` equality is exact.
        raw in prop::collection::vec((any::<u64>(), 8u32..64), 1..128),
        split in any::<u16>(),
    ) {
        let values: Vec<u64> = raw.iter().map(|&(v, s)| v >> s).collect();
        let cut = split as usize % (values.len() + 1);
        let (a, b) = (LogHistogram::new(), LogHistogram::new());
        let union = LogHistogram::new();
        for &v in &values[..cut] {
            a.record(v);
            union.record(v);
        }
        for &v in &values[cut..] {
            b.record(v);
            union.record(v);
        }
        // Exact: element-wise bucket addition is the union's histogram.
        prop_assert_eq!(a.snapshot().merged_with(&b.snapshot()), union.snapshot());
    }

    #[test]
    fn quantiles_stay_within_one_bucket_of_exact(
        raw in prop::collection::vec((any::<u64>(), 0u32..64), 1..128),
        q in 0.0f64..1.0,
    ) {
        let values: Vec<u64> = raw.iter().map(|&(v, s)| v >> s).collect();
        let hist = LogHistogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let got = hist.snapshot().quantile(q);
        // The reported quantile is the upper bound of the exact order
        // statistic's bucket (clamped to the observed max): never below
        // the true value, never more than one bucket width above it.
        let (_, hi) = bucket_bounds(bucket_index(exact));
        prop_assert!(got >= exact, "quantile {got} below exact {exact}");
        prop_assert!(got <= hi, "quantile {got} beyond exact's bucket end {hi}");
    }

    #[test]
    fn ring_overflow_drops_oldest_with_exact_count(
        capacity in 16usize..64,
        events in 1usize..160,
    ) {
        let tracer = Tracer::new(capacity);
        tracer.set_enabled(true);
        for i in 0..events {
            tracer.record_interval("prop.evt", "test", i as u64, i as u64 + 1, i as u64);
        }
        let snap = tracer.snapshot();
        let expect_dropped = events.saturating_sub(capacity) as u64;
        prop_assert_eq!(snap.dropped_events, expect_dropped);
        prop_assert_eq!(tracer.dropped_events(), expect_dropped);
        prop_assert_eq!(snap.spans.len(), events.min(capacity));
        // Exactly the newest `capacity` events survive, oldest dropped.
        let mut args: Vec<u64> = snap.spans.iter().map(|s| s.arg).collect();
        args.sort_unstable();
        let survivors: Vec<u64> = (expect_dropped..events as u64).collect();
        prop_assert_eq!(args, survivors);
    }
}
