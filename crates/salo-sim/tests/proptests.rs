//! Property tests: the simulator agrees with the reference kernels on
//! random patterns, data and array geometries, and the lowered fast path
//! is bit-identical to the event-accurate systolic oracle.

use proptest::prelude::*;
use salo_kernels::{sparse_attention, Qkv};
use salo_patterns::{HybridPattern, Window};
use salo_scheduler::{ExecutionPlan, HardwareMeta};
use salo_sim::{AcceleratorConfig, ExecScratch, LoweredPlan, SpatialAccelerator};

fn arb_pattern() -> impl Strategy<Value = HybridPattern> {
    (12usize..40, -6i64..0, 1usize..8, 1usize..4, prop::collection::vec(0usize..12, 0..3))
        .prop_filter_map("valid pattern", |(n, lo, width, dil, globals)| {
            let hi = lo + (width as i64) * dil as i64;
            let w = Window::dilated(lo, hi, dil).ok()?;
            HybridPattern::builder(n)
                .window(w)
                .global_tokens(globals.into_iter().filter(move |&g| g < n))
                .build()
                .ok()
        })
}

fn arb_hw() -> impl Strategy<Value = HardwareMeta> {
    (2usize..9, 2usize..9).prop_map(|(r, c)| HardwareMeta::new(r, c, 1, 1).expect("hw"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Functional execution tracks the exact f32 reference within the
    /// quantization budget, for random patterns/geometries/data.
    #[test]
    fn simulator_tracks_reference(pattern in arb_pattern(), hw in arb_hw(), seed in 0u64..1000) {
        let d = 8usize;
        let plan = match ExecutionPlan::build(&pattern, hw) {
            Ok(p) => p,
            Err(_) => return Ok(()), // degenerate (empty) pattern
        };
        let config = AcceleratorConfig { hw, ..Default::default() };
        let sim = SpatialAccelerator::new(config);
        let qkv = Qkv::random(pattern.n(), d, seed);
        let scale = SpatialAccelerator::default_scale(d);
        let out = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).expect("execute");
        let exact = sparse_attention(&pattern, &qkv.q, &qkv.k, &qkv.v, scale).expect("reference");
        let diff = out.output.max_abs_diff(&exact);
        prop_assert!(diff < 0.4, "diff {diff}");
        prop_assert_eq!(out.report.saturation_events, 0);
    }

    /// The event-accurate systolic path is bit-identical to the lowered
    /// fast path on random inputs — outputs, weights and saturation
    /// counts.
    #[test]
    fn systolic_always_bit_matches(pattern in arb_pattern(), seed in 0u64..1000) {
        let d = 4usize;
        let hw = HardwareMeta::new(4, 4, 1, 1).expect("hw");
        let plan = match ExecutionPlan::build(&pattern, hw) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let config = AcceleratorConfig { hw, ..Default::default() };
        let sim = SpatialAccelerator::new(config);
        let qkv = Qkv::random(pattern.n(), d, seed);
        let scale = SpatialAccelerator::default_scale(d);
        let fast = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).expect("lowered");
        let slow = sim.execute_systolic(&plan, &qkv.q, &qkv.k, &qkv.v, scale).expect("systolic");
        prop_assert_eq!(fast.raw, slow.raw);
        prop_assert_eq!(fast.weights_q16, slow.weights_q16);
        prop_assert_eq!(fast.report.saturation_events, slow.report.saturation_events);
    }

    /// The lowered fast path — pre-lowered plan, one scratch reused
    /// across two different patterns, shapes and head dimensions — stays
    /// bit-identical to the systolic oracle: outputs, `weights_q16` and
    /// saturation counts.
    #[test]
    fn lowered_fast_path_bit_matches_systolic(
        first in arb_pattern(),
        second in arb_pattern(),
        hw in arb_hw(),
        d1 in 2usize..10,
        d2 in 2usize..10,
        seed in 0u64..1000,
    ) {
        let config = AcceleratorConfig { hw, ..Default::default() };
        let sim = SpatialAccelerator::new(config);
        let mut scratch = ExecScratch::new();
        for (pattern, d) in [(&first, d1), (&second, d2)] {
            let plan = match ExecutionPlan::build(pattern, hw) {
                Ok(p) => p,
                Err(_) => continue, // degenerate (empty) pattern
            };
            let lowered = LoweredPlan::lower(&plan);
            let qkv = Qkv::random(pattern.n(), d, seed);
            let scale = SpatialAccelerator::default_scale(d);
            let fast = sim
                .execute_lowered(&lowered, &qkv.q, &qkv.k, &qkv.v, scale, &mut scratch)
                .expect("lowered");
            let slow =
                sim.execute_systolic(&plan, &qkv.q, &qkv.k, &qkv.v, scale).expect("systolic");
            prop_assert_eq!(fast.raw, slow.raw);
            prop_assert_eq!(fast.weights_q16, slow.weights_q16);
            prop_assert_eq!(fast.report.saturation_events, slow.report.saturation_events);
        }
    }

    /// Estimates are monotone in work: more heads, more cycles; and the
    /// utilization stays in (0, 1].
    #[test]
    fn estimates_well_behaved(pattern in arb_pattern(), d in 4usize..64) {
        let hw = HardwareMeta::new(8, 8, 1, 1).expect("hw");
        let plan = match ExecutionPlan::build(&pattern, hw) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let config = AcceleratorConfig { hw, ..Default::default() };
        let sim = SpatialAccelerator::new(config);
        let one = sim.estimate(&plan, d, 1);
        let four = sim.estimate(&plan, d, 4);
        prop_assert_eq!(four.cycles.total, 4 * one.cycles.per_head);
        prop_assert!(one.utilization.mac_utilization > 0.0);
        prop_assert!(one.utilization.mac_utilization <= 1.0);
        prop_assert!(one.energy_j >= 0.0);
    }
}
