//! Partition-determinism property suite: the sharded multi-head executor
//! is bit-identical to the sequential path and to the event-accurate
//! systolic oracle at **every** parallelism, and the partition itself
//! assigns each op exactly once.
//!
//! The claim under test is determinism *by construction*: sharding is by
//! destination row, so the non-associative weighted-sum merges of one
//! row all happen on one shard in plan order, and the thread count can
//! never reach the arithmetic. These tests run the partitioned executor
//! at shard counts 1, 2, 4 and 7 on random hybrid patterns and random
//! data and require equality down to the last bit — outputs, the Q.16
//! softmax weights, and the saturation counters.

use proptest::prelude::*;
use salo_kernels::Qkv;
use salo_patterns::{HybridPattern, Window};
use salo_scheduler::{ExecutionPlan, HardwareMeta};
use salo_sim::{
    AcceleratorConfig, ExecScratch, HeadsScratch, LoweredPlan, Partition, SpatialAccelerator,
};

const PARALLELISMS: [usize; 4] = [1, 2, 4, 7];

fn arb_pattern() -> impl Strategy<Value = HybridPattern> {
    (12usize..40, -6i64..0, 1usize..8, 1usize..4, prop::collection::vec(0usize..12, 0..3))
        .prop_filter_map("valid pattern", |(n, lo, width, dil, globals)| {
            let hi = lo + (width as i64) * dil as i64;
            let w = Window::dilated(lo, hi, dil).ok()?;
            HybridPattern::builder(n)
                .window(w)
                .global_tokens(globals.into_iter().filter(move |&g| g < n))
                .build()
                .ok()
        })
}

fn accel(hw: HardwareMeta) -> SpatialAccelerator {
    SpatialAccelerator::new(AcceleratorConfig { hw, ..Default::default() })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// At every tested parallelism, every head of the partitioned
    /// executor is bit-identical to the sequential per-head path and to
    /// the systolic oracle: raw outputs, `weights_q16` and saturation
    /// counts.
    #[test]
    fn partitioned_execution_bit_matches_oracle_at_every_parallelism(
        pattern in arb_pattern(),
        num_heads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let d = 4usize;
        let hw = HardwareMeta::new(4, 4, 1, 1).expect("hw");
        let plan = match ExecutionPlan::build(&pattern, hw) {
            Ok(p) => p,
            Err(_) => return Ok(()), // degenerate (empty) pattern
        };
        let lowered = LoweredPlan::lower(&plan);
        let sim = accel(hw);
        let scale = SpatialAccelerator::default_scale(d);
        let heads: Vec<Qkv> =
            (0..num_heads).map(|h| Qkv::random(pattern.n(), d, seed + h as u64)).collect();

        // Oracles, per head: the event-stepped systolic array and the
        // sequential lowered path.
        let mut scratch = ExecScratch::new();
        let oracle: Vec<_> = heads
            .iter()
            .map(|h| {
                let slow = sim.execute_systolic(&plan, &h.q, &h.k, &h.v, scale).expect("systolic");
                let seq = sim
                    .execute_lowered(&lowered, &h.q, &h.k, &h.v, scale, &mut scratch)
                    .expect("sequential");
                assert_eq!(seq.raw, slow.raw, "sequential vs systolic");
                slow
            })
            .collect();

        let mut heads_scratch = HeadsScratch::new();
        for p in PARALLELISMS {
            let outs = sim
                .execute_heads_lowered(&lowered, &heads, scale, p, &mut heads_scratch)
                .expect("partitioned");
            prop_assert_eq!(outs.len(), num_heads);
            for (h, (got, want)) in outs.iter().zip(&oracle).enumerate() {
                prop_assert_eq!(&got.raw, &want.raw, "head {} raw at parallelism {}", h, p);
                prop_assert_eq!(
                    &got.weights_q16, &want.weights_q16,
                    "head {} weights at parallelism {}", h, p
                );
                prop_assert_eq!(
                    got.report.saturation_events, want.report.saturation_events,
                    "head {} saturation at parallelism {}", h, p
                );
            }
        }
    }

    /// The partition covers every `(head, op)` pair exactly once with
    /// spans tiling the item space, at every tested parallelism — the
    /// structural half of the determinism argument.
    #[test]
    fn partition_assigns_every_op_exactly_once(
        pattern in arb_pattern(),
        num_heads in 1usize..6,
    ) {
        let hw = HardwareMeta::new(4, 4, 1, 1).expect("hw");
        let plan = match ExecutionPlan::build(&pattern, hw) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let lowered = LoweredPlan::lower(&plan);
        for p in PARALLELISMS {
            let part = Partition::build(&lowered, num_heads, p);
            prop_assert_eq!(part.num_shards(), p);
            part.validate(&lowered).expect("partition invariants");
            prop_assert_eq!(part.total_ops(), num_heads * lowered.ops().len());
            // Cost accounting is conserved across shards.
            let shard_cost: u64 = part.shards().iter().map(|s| s.cost()).sum();
            let plan_cost: u64 = lowered
                .ops()
                .iter()
                .map(|op| u64::from(op.key_len) + salo_sim::OP_BASE_COST)
                .sum::<u64>() * num_heads as u64;
            prop_assert_eq!(shard_cost, plan_cost);
        }
    }

    /// One `HeadsScratch` reused across different shapes, head counts and
    /// parallelisms stays bit-transparent — same outputs as a fresh
    /// scratch per call.
    #[test]
    fn heads_scratch_reuse_is_bit_transparent(
        first in arb_pattern(),
        second in arb_pattern(),
        seed in 0u64..1000,
    ) {
        let hw = HardwareMeta::new(4, 4, 1, 1).expect("hw");
        let sim = accel(hw);
        let mut reused = HeadsScratch::new();
        for (pattern, heads_n, d, p) in [(&first, 3usize, 4usize, 4usize), (&second, 2, 6, 2)] {
            let plan = match ExecutionPlan::build(pattern, hw) {
                Ok(pl) => pl,
                Err(_) => continue,
            };
            let lowered = LoweredPlan::lower(&plan);
            let scale = SpatialAccelerator::default_scale(d);
            let heads: Vec<Qkv> =
                (0..heads_n).map(|h| Qkv::random(pattern.n(), d, seed + 31 * h as u64)).collect();
            let warm = sim
                .execute_heads_lowered(&lowered, &heads, scale, p, &mut reused)
                .expect("reused scratch");
            let cold = sim
                .execute_heads_lowered(&lowered, &heads, scale, p, &mut HeadsScratch::new())
                .expect("fresh scratch");
            for (w, c) in warm.iter().zip(&cold) {
                prop_assert_eq!(&w.raw, &c.raw);
                prop_assert_eq!(&w.weights_q16, &c.weights_q16);
                prop_assert_eq!(w.report.saturation_events, c.report.saturation_events);
            }
        }
    }
}

#[test]
fn empty_head_list_is_ok() {
    let hw = HardwareMeta::new(4, 4, 1, 1).unwrap();
    let pattern = HybridPattern::builder(16).window(Window::symmetric(3).unwrap()).build().unwrap();
    let plan = ExecutionPlan::build(&pattern, hw).unwrap();
    let lowered = LoweredPlan::lower(&plan);
    let sim = accel(hw);
    let outs = sim.execute_heads_lowered(&lowered, &[], 0.5, 4, &mut HeadsScratch::new()).unwrap();
    assert!(outs.is_empty());
}

#[test]
fn shape_mismatch_rejected_per_head() {
    let hw = HardwareMeta::new(4, 4, 1, 1).unwrap();
    let pattern = HybridPattern::builder(16).window(Window::symmetric(3).unwrap()).build().unwrap();
    let plan = ExecutionPlan::build(&pattern, hw).unwrap();
    let lowered = LoweredPlan::lower(&plan);
    let sim = accel(hw);
    let good = Qkv::random(16, 4, 1);
    let bad = Qkv::random(12, 4, 2);
    let err = sim
        .execute_heads_lowered(&lowered, &[good, bad], 0.5, 2, &mut HeadsScratch::new())
        .unwrap_err();
    assert!(matches!(err, salo_sim::SimError::ShapeMismatch { plan_n: 16, .. }));
}
