//! Cycle-stepped systolic execution of one pass.
//!
//! [`SpatialAccelerator::execute`](crate::SpatialAccelerator::execute)
//! computes passes with vectorized arithmetic and *charges* cycles from the
//! closed-form model. This module is the bridge that justifies both: it
//! steps a single pass cycle by cycle through the five-stage datapath of
//! Fig. 6 with explicit operand movement —
//!
//! * stage 1: output-stationary `Q x K^T` with the systolic skew
//!   (`PE(u,v)` consumes element `e` of its operands at cycle `u + v + e`;
//!   key elements ride the diagonal K/V chain);
//! * stage 2: per-PE exponential (LUT + MAC);
//! * stage 3: a *real ripple* of the row sum, one PE per cycle, then the
//!   reciprocal unit at the row edge and a broadcast;
//! * stage 4: normalization multiply;
//! * stage 5: weight-stationary `S' x V`: output element `e` enters the
//!   row at cycle `e`, picks up `prob * v[e]` at each PE, and exits after
//!   `C` hops.
//!
//! Tests assert that (a) the cycle count equals
//! [`CycleModel::pass_latency`](crate::CycleModel::pass_latency) exactly,
//! and (b) the computed values are bit-identical to the vectorized
//! datapath — the event-level and analytical views of the hardware agree.

use salo_fixed::{qk_mac, sv_mac, ExpLut, Fix8x4, MacSaturation, PartialRow, RecipUnit, EXP_FRAC};

use crate::TimingParams;

/// Per-stage cycle boundaries of one simulated pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassTrace {
    /// Cycles spent in stage 1 (including systolic fill skew).
    pub stage1: u64,
    /// Cycles in stage 2 (exponential).
    pub stage2: u64,
    /// Cycles in stage 3 (row-sum ripple + reciprocal + broadcast).
    pub stage3: u64,
    /// Cycles in stage 4 (normalize).
    pub stage4: u64,
    /// Cycles in stage 5 (value matmul + drain skew).
    pub stage5: u64,
    /// Total pass latency in cycles.
    pub total: u64,
}

/// One PE's architectural registers (Fig. 5, right).
#[derive(Debug, Clone, Copy, Default)]
struct PeRegs {
    /// `Reg_acc`: stage-1 accumulator, then the exponential.
    acc: i32,
    /// Exponential value (Q.16) after stage 2.
    exp_q16: i64,
    /// Normalized probability (Q.15) after stage 4.
    prob: u16,
    /// Whether this PE holds an active score position.
    active: bool,
}

/// A cycle-stepped `rows x cols` systolic array executing single passes.
#[derive(Debug, Clone)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
    timing: TimingParams,
}

impl SystolicArray {
    /// Creates an array with the given geometry and stage timing.
    #[must_use]
    pub fn new(rows: usize, cols: usize, timing: TimingParams) -> Self {
        Self { rows, cols, timing }
    }

    /// Executes one pass cycle by cycle.
    ///
    /// `queries[u]` is row `u`'s query vector (or `None` for an idle row);
    /// `key_of(u, v)` / `val_of(u, v)` give the key/value vector at cell
    /// `(u, v)` (or `None` for a masked/clipped cell). All vectors must
    /// share dimension `d`.
    ///
    /// Returns each row's locally-normalized [`PartialRow`] (empty rows
    /// yield `None`) and the cycle trace.
    ///
    /// # Panics
    ///
    /// Panics if an operand vector has dimension other than `d`.
    // One parameter per hardware port of the pass; bundling them would
    // obscure the correspondence with the PE-array interface.
    #[allow(clippy::too_many_arguments)]
    pub fn run_pass<'a>(
        &self,
        d: usize,
        queries: &[Option<&'a [Fix8x4]>],
        key_of: impl Fn(usize, usize) -> Option<&'a [Fix8x4]>,
        val_of: impl Fn(usize, usize) -> Option<&'a [Fix8x4]>,
        exp: &ExpLut,
        recip: &RecipUnit,
        sat: &mut MacSaturation,
    ) -> (Vec<Option<PartialRow>>, PassTrace) {
        let (rows, cols) = (self.rows, self.cols);
        assert!(queries.len() <= rows, "tile taller than the array");
        let mut pes = vec![PeRegs::default(); rows * cols];
        let idx = |u: usize, v: usize| u * cols + v;

        // ---- Stage 1: output-stationary QK^T with systolic skew. ----
        // PE(u, v) consumes operand element e at cycle u + v + e; we step
        // the global cycle counter and fire exactly those MACs, which
        // makes the data movement (one element per neighbour per cycle)
        // explicit.
        let stage1_span = (d as u64 + rows as u64 + cols as u64).saturating_sub(2).max(1);
        for cycle in 0..stage1_span {
            for (u, q) in queries.iter().enumerate() {
                let Some(q) = q else { continue };
                assert_eq!(q.len(), d, "query dimension");
                for v in 0..cols {
                    let e = cycle as i64 - u as i64 - v as i64;
                    if e < 0 || e >= d as i64 {
                        continue;
                    }
                    let Some(k) = key_of(u, v) else { continue };
                    assert_eq!(k.len(), d, "key dimension");
                    let e = e as usize;
                    let pe = &mut pes[idx(u, v)];
                    pe.acc = qk_mac(pe.acc, q[e], k[e], sat);
                    pe.active = true;
                }
            }
        }

        // ---- Stage 2: exponential, all active PEs in parallel. ----
        let stage2_span = u64::from(self.timing.exp_cycles);
        for pe in pes.iter_mut().filter(|pe| pe.active) {
            pe.exp_q16 = exp.eval_q8(pe.acc);
        }

        // ---- Stage 3: row-sum ripple (one PE per cycle), reciprocal,
        //      broadcast of the inverse. The ripple is stepped explicitly:
        //      at ripple cycle v the partial sum moves from PE(u, v-1)
        //      into PE(u, v) and picks up its exponential. ----
        let mut row_sums = vec![0i64; rows];
        for ripple_cycle in 0..cols {
            for (u, sum) in row_sums.iter_mut().enumerate() {
                let pe = &pes[idx(u, ripple_cycle)];
                if pe.active {
                    *sum += pe.exp_q16;
                }
            }
        }
        let stage3_span = cols as u64 + u64::from(self.timing.inv_latency) + 1;
        let inverses: Vec<Option<salo_fixed::Recip>> = row_sums
            .iter()
            .map(|&w| (w > 0).then(|| recip.recip(w, EXP_FRAC).expect("positive row sum")))
            .collect();

        // ---- Stage 4: normalize. ----
        let stage4_span = u64::from(self.timing.norm_cycles);
        for u in 0..rows {
            let Some(inv) = inverses[u] else { continue };
            for v in 0..cols {
                let pe = &mut pes[idx(u, v)];
                if pe.active {
                    pe.prob = inv.scale_to_prob(pe.exp_q16, EXP_FRAC);
                }
            }
        }

        // ---- Stage 5: weight-stationary S'V. Output element e enters the
        //      row at cycle e and accumulates left to right. ----
        let stage5_span = (d as u64 + rows as u64 + cols as u64).saturating_sub(2).max(1);
        let mut outputs: Vec<Option<PartialRow>> = vec![None; rows];
        for (u, q) in queries.iter().enumerate() {
            if q.is_none() || row_sums[u] == 0 {
                continue;
            }
            let mut out = vec![0i64; d];
            for e in 0..d {
                // The partial sum for element e ripples across the row.
                let mut partial = 0i64;
                for v in 0..cols {
                    let pe = &pes[idx(u, v)];
                    if !pe.active {
                        continue;
                    }
                    let Some(val) = val_of(u, v) else { continue };
                    assert_eq!(val.len(), d, "value dimension");
                    partial = sv_mac(partial, pe.prob, val[e], sat);
                }
                out[e] = partial;
            }
            outputs[u] = Some(PartialRow { weight_q16: row_sums[u], out_q19: out });
        }

        let trace = PassTrace {
            stage1: stage1_span,
            stage2: stage2_span,
            stage3: stage3_span,
            stage4: stage4_span,
            stage5: stage5_span,
            total: stage1_span + stage2_span + stage3_span + stage4_span + stage5_span,
        };
        (outputs, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AcceleratorConfig, CycleModel};
    use salo_fixed::{fixed_softmax_parts, qk_dot, quantize};
    use salo_kernels::gaussian_matrix;

    fn quantized_rows(seed: u64, n: usize, d: usize) -> Vec<Vec<Fix8x4>> {
        let m = gaussian_matrix(seed, n, d, 0.0, 1.0);
        (0..n).map(|i| quantize(m.row(i))).collect()
    }

    #[test]
    fn cycle_count_matches_closed_form_model() {
        let config = AcceleratorConfig::default();
        let model = CycleModel::new(&{
            let mut c = config.clone();
            c.pipelined = false;
            c
        });
        for d in [16usize, 32, 64, 128] {
            let array = SystolicArray::new(32, 32, config.timing);
            let q = quantized_rows(1, 32, d);
            let k = quantized_rows(2, 64, d);
            let v = quantized_rows(3, 64, d);
            let queries: Vec<Option<&[Fix8x4]>> = q.iter().map(|r| Some(r.as_slice())).collect();
            let exp = ExpLut::new(32);
            let recip = RecipUnit::new(64);
            let mut sat = MacSaturation::default();
            let (_, trace) = array.run_pass(
                d,
                &queries,
                |u, vv| Some(k[(u + vv) % 64].as_slice()),
                |u, vv| Some(v[(u + vv) % 64].as_slice()),
                &exp,
                &recip,
                &mut sat,
            );
            assert_eq!(trace.total, model.pass_latency(d), "d = {d}");
        }
    }

    #[test]
    fn values_bit_match_vectorized_datapath() {
        // The event-stepped pass and the straight-line row computation
        // must agree bit for bit: same MACs, same order.
        let d = 8;
        let (rows, cols) = (4usize, 6usize);
        let array = SystolicArray::new(rows, cols, TimingParams::default());
        let q = quantized_rows(10, rows, d);
        let k = quantized_rows(11, rows + cols, d);
        let v = quantized_rows(12, rows + cols, d);
        let queries: Vec<Option<&[Fix8x4]>> = q.iter().map(|r| Some(r.as_slice())).collect();
        let exp = ExpLut::new(32);
        let recip = RecipUnit::new(64);
        let mut sat = MacSaturation::default();
        let (outputs, _) = array.run_pass(
            d,
            &queries,
            |u, vv| Some(k[u + vv].as_slice()),
            |u, vv| Some(v[u + vv].as_slice()),
            &exp,
            &recip,
            &mut sat,
        );

        for u in 0..rows {
            // Reference: scores left to right, softmax parts, SV.
            let scores: Vec<i32> = (0..cols)
                .map(|vv| qk_dot(&q[u], &k[u + vv], &mut MacSaturation::default()))
                .collect();
            let (probs, weight, _) = fixed_softmax_parts(&scores, &exp, &recip).expect("softmax");
            let mut out = vec![0i64; d];
            for (vv, &p) in probs.iter().enumerate() {
                for (o, &ve) in out.iter_mut().zip(&v[u + vv]) {
                    *o = sv_mac(*o, p, ve, &mut MacSaturation::default());
                }
            }
            let got = outputs[u].as_ref().expect("active row");
            assert_eq!(got.weight_q16, weight, "row {u} weight");
            assert_eq!(got.out_q19, out, "row {u} output");
        }
    }

    #[test]
    fn masked_cells_do_not_contribute() {
        let d = 4;
        let array = SystolicArray::new(2, 4, TimingParams::default());
        let q = quantized_rows(20, 2, d);
        let k = quantized_rows(21, 8, d);
        let v = quantized_rows(22, 8, d);
        let queries: Vec<Option<&[Fix8x4]>> = q.iter().map(|r| Some(r.as_slice())).collect();
        let exp = ExpLut::new(32);
        let recip = RecipUnit::new(64);
        let mut sat = MacSaturation::default();
        // Row 1 fully masked; row 0 only column 2 active.
        let (outputs, _) = array.run_pass(
            d,
            &queries,
            |u, vv| (u == 0 && vv == 2).then(|| k[3].as_slice()),
            |u, vv| (u == 0 && vv == 2).then(|| v[3].as_slice()),
            &exp,
            &recip,
            &mut sat,
        );
        assert!(outputs[1].is_none(), "masked row produces nothing");
        let row0 = outputs[0].as_ref().unwrap();
        // Single active key: probability one, output = v[3] at Q.19.
        for (o, &ve) in row0.out_q19.iter().zip(&v[3]) {
            let expected = i64::from(salo_fixed::PROB_ONE) * i64::from(ve.raw());
            // prob may round a hair under one.
            let diff = (o - expected).abs();
            assert!(diff <= (1 << 6), "output {o} vs {expected}");
        }
    }

    #[test]
    fn idle_query_rows_skipped() {
        let d = 4;
        let array = SystolicArray::new(3, 2, TimingParams::default());
        let q = quantized_rows(30, 3, d);
        let k = quantized_rows(31, 8, d);
        let queries: Vec<Option<&[Fix8x4]>> =
            vec![Some(q[0].as_slice()), None, Some(q[2].as_slice())];
        let exp = ExpLut::new(32);
        let recip = RecipUnit::new(64);
        let mut sat = MacSaturation::default();
        let (outputs, trace) = array.run_pass(
            d,
            &queries,
            |u, vv| Some(k[u + vv].as_slice()),
            |u, vv| Some(k[u + vv].as_slice()),
            &exp,
            &recip,
            &mut sat,
        );
        assert!(outputs[0].is_some());
        assert!(outputs[1].is_none());
        assert!(outputs[2].is_some());
        // Cycle cost is geometry-determined, not occupancy-determined.
        assert_eq!(
            trace.total,
            trace.stage1 + trace.stage2 + trace.stage3 + trace.stage4 + trace.stage5
        );
    }
}
