//! Accelerator configuration: the paper's Table 1 instance and knobs for
//! the ablation studies.

use salo_patterns::StableHasher;
use salo_scheduler::HardwareMeta;

/// Per-stage timing parameters (cycles), matching the five-stage data path
/// of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// Stage-2 latency: LUT lookup plus one MAC.
    pub exp_cycles: u32,
    /// Latency of the reciprocal unit at the row edge (stage 3).
    pub inv_latency: u32,
    /// Stage-4 normalization multiply.
    pub norm_cycles: u32,
    /// Inter-pass synchronization bubble in pipelined mode.
    pub sync_cycles: u32,
}

impl Default for TimingParams {
    fn default() -> Self {
        Self { exp_cycles: 2, inv_latency: 4, norm_cycles: 1, sync_cycles: 1 }
    }
}

/// On-chip buffer sizes (KB), from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferConfig {
    /// Query buffer (16 KB in Table 1).
    pub query_kb: usize,
    /// Key buffer (32 KB).
    pub key_kb: usize,
    /// Value buffer (32 KB).
    pub value_kb: usize,
    /// Output buffer (32 KB).
    pub output_kb: usize,
}

impl Default for BufferConfig {
    fn default() -> Self {
        Self { query_kb: 16, key_kb: 32, value_kb: 32, output_kb: 32 }
    }
}

impl BufferConfig {
    /// Total buffer capacity in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        (self.query_kb + self.key_kb + self.value_kb + self.output_kb) * 1024
    }
}

/// Full accelerator configuration.
///
/// [`AcceleratorConfig::default`] reproduces the synthesized instance of
/// Table 1: a `32 x 32` PE array with one global row/column at 1 GHz,
/// 532.66 mW and 4.56 mm² in FreePDK 45 nm.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Array geometry (shared with the data scheduler).
    pub hw: HardwareMeta,
    /// Clock frequency in GHz (Table 1: 1 GHz).
    pub freq_ghz: f64,
    /// Segments in the piecewise-linear exponential LUT.
    pub exp_segments: usize,
    /// Entries in the reciprocal LUT.
    pub recip_entries: usize,
    /// Stage timing parameters.
    pub timing: TimingParams,
    /// On-chip buffers.
    pub buffers: BufferConfig,
    /// Synthesized power (W), Table 1: 532.66 mW.
    pub power_w: f64,
    /// Synthesized area (mm²), Table 1: 4.56 mm².
    pub area_mm2: f64,
    /// Whether consecutive passes overlap in the PE pipeline (stage 1 of
    /// pass `p+1` fills while stages 3–5 of pass `p` drain). On by
    /// default; disabling it is the pipelining ablation.
    pub pipelined: bool,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self {
            hw: HardwareMeta::default(),
            freq_ghz: 1.0,
            exp_segments: 32,
            recip_entries: 64,
            timing: TimingParams::default(),
            buffers: BufferConfig::default(),
            power_w: 0.53266,
            area_mm2: 4.56,
            pipelined: true,
        }
    }
}

impl AcceleratorConfig {
    /// Peak MAC throughput of the PE array in MAC/s.
    #[must_use]
    pub fn peak_macs_per_s(&self) -> f64 {
        self.hw.array_pes() as f64 * self.freq_ghz * 1e9
    }

    /// Cycle time in seconds.
    #[must_use]
    pub fn cycle_time_s(&self) -> f64 {
        1e-9 / self.freq_ghz
    }

    /// A stable 64-bit fingerprint of the full configuration.
    ///
    /// `AcceleratorConfig` carries `f64` fields, so it cannot derive
    /// `Eq`/`Hash`; the fingerprint hashes every field (floats by IEEE-754
    /// bit pattern) with the release-stable [`StableHasher`], making the
    /// configuration usable inside persistent cache keys. Equal configs
    /// always fingerprint identically (modulo `-0.0`/`NaN` bit
    /// distinctions); distinct configs collide only with ~2^-64
    /// probability, so cache users should verify the actual config on a
    /// hit, as `salo-serve`'s plan cache does.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        // Exhaustive destructuring: adding a field without hashing it is a
        // compile error, so a new knob can never silently alias plan-cache
        // keys of configs that differ in it.
        let Self {
            hw: HardwareMeta { pe_rows, pe_cols, global_rows, global_cols },
            freq_ghz,
            exp_segments,
            recip_entries,
            timing: TimingParams { exp_cycles, inv_latency, norm_cycles, sync_cycles },
            buffers: BufferConfig { query_kb, key_kb, value_kb, output_kb },
            power_w,
            area_mm2,
            pipelined,
        } = *self;
        let mut h = StableHasher::new();
        h.write_usize(pe_rows);
        h.write_usize(pe_cols);
        h.write_usize(global_rows);
        h.write_usize(global_cols);
        h.write_f64(freq_ghz);
        h.write_usize(exp_segments);
        h.write_usize(recip_entries);
        h.write_u64(u64::from(exp_cycles));
        h.write_u64(u64::from(inv_latency));
        h.write_u64(u64::from(norm_cycles));
        h.write_u64(u64::from(sync_cycles));
        h.write_usize(query_kb);
        h.write_usize(key_kb);
        h.write_usize(value_kb);
        h.write_usize(output_kb);
        h.write_f64(power_w);
        h.write_f64(area_mm2);
        h.write_bool(pipelined);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.hw.pe_rows, 32);
        assert_eq!(c.hw.pe_cols, 32);
        assert!((c.freq_ghz - 1.0).abs() < f64::EPSILON);
        assert!((c.power_w - 0.53266).abs() < 1e-9);
        assert!((c.area_mm2 - 4.56).abs() < 1e-9);
        assert_eq!(c.buffers.query_kb, 16);
        assert_eq!(c.buffers.key_kb, 32);
        assert_eq!(c.buffers.value_kb, 32);
        assert_eq!(c.buffers.output_kb, 32);
        assert_eq!(c.buffers.total_bytes(), 112 * 1024);
        assert!(c.pipelined);
    }

    #[test]
    fn fingerprint_tracks_every_knob() {
        let base = AcceleratorConfig::default();
        assert_eq!(base.fingerprint(), AcceleratorConfig::default().fingerprint());

        let variants = [
            AcceleratorConfig { freq_ghz: 2.0, ..AcceleratorConfig::default() },
            AcceleratorConfig { exp_segments: 16, ..AcceleratorConfig::default() },
            AcceleratorConfig { pipelined: false, ..AcceleratorConfig::default() },
            AcceleratorConfig {
                hw: HardwareMeta::new(16, 64, 1, 1).unwrap(),
                ..AcceleratorConfig::default()
            },
            AcceleratorConfig {
                timing: TimingParams { sync_cycles: 2, ..TimingParams::default() },
                ..AcceleratorConfig::default()
            },
            AcceleratorConfig {
                buffers: BufferConfig { key_kb: 64, ..BufferConfig::default() },
                ..AcceleratorConfig::default()
            },
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "variant {v:?} must differ");
        }
    }

    #[test]
    fn peak_throughput() {
        let c = AcceleratorConfig::default();
        // 1024 PEs at 1 GHz: ~1.02e12 MAC/s — "nearly equal" to Sanger's
        // 64x16 array at the same frequency (§6.3).
        assert!((c.peak_macs_per_s() - 1.024e12).abs() < 1e9);
        assert!((c.cycle_time_s() - 1e-9).abs() < 1e-18);
    }
}
