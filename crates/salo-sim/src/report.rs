//! Execution and timing reports.

use crate::{CycleBreakdown, EnergyBreakdown, TrafficReport};
use salo_trace::StageProfile;

/// PE utilization figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationReport {
    /// Fraction of array cell slots holding useful score positions
    /// (scheduler occupancy: clipping and masking cost).
    pub occupancy: f64,
    /// Fraction of array PE-cycles spent on useful MAC work — the paper's
    /// utilization metric (>75 % on hybrid patterns, §6.3).
    pub mac_utilization: f64,
}

/// A timing-only estimate (no functional execution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Cycle totals.
    pub cycles: CycleBreakdown,
    /// Wall-clock seconds at the configured frequency.
    pub time_s: f64,
    /// Lumped energy (synthesized power x time).
    pub energy_j: f64,
    /// Utilization figures.
    pub utilization: UtilizationReport,
    /// Buffer traffic estimate.
    pub traffic: TrafficReport,
}

/// The report attached to a functional execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// The timing estimate for the executed plan.
    pub timing: TimingReport,
    /// Decomposed energy (MACs, SRAM, LUTs) alongside the lumped figure.
    pub energy: EnergyBreakdown,
    /// Fixed-point saturation events observed (0 in healthy runs).
    pub saturation_events: u64,
    /// Host-measured per-stage cost of the lowered datapath, present when
    /// the executing scratch had profiling enabled
    /// ([`ExecScratch::set_profiling`](crate::ExecScratch::set_profiling)).
    /// Under the partitioned multi-head path the layer-wide aggregate is
    /// attached to the first head's report.
    pub stages: Option<StageProfile>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_are_plain_data() {
        let cycles =
            CycleBreakdown { passes: 1, per_pass: 2, fill_drain: 3, per_head: 5, total: 5 };
        let t = TimingReport {
            cycles,
            time_s: 5e-9,
            energy_j: 1e-9,
            utilization: UtilizationReport { occupancy: 0.9, mac_utilization: 0.8 },
            traffic: TrafficReport::default(),
        };
        assert_eq!(t.cycles.total, 5);
        let e = ExecutionReport {
            timing: t,
            energy: EnergyBreakdown { lumped_j: 1e-9, mac_j: 0.0, sram_j: 0.0, lut_j: 0.0 },
            saturation_events: 0,
            stages: None,
        };
        assert_eq!(e.saturation_events, 0);
        assert!(e.stages.is_none());
    }
}
