//! Buffer traffic accounting: the data-reuse claim of §4.1, quantified.
//!
//! SALO's diagonal connections let a key/value vector entering the array
//! serve up to `#row` successive queries; without them every PE row would
//! load its own copy from the key/value buffers. This module derives both
//! figures from an execution plan so the ablation bench can report the
//! reuse factor.

use salo_scheduler::{ExecutionPlan, PlanStats};

/// Byte traffic between buffers and the PE array for one head.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrafficReport {
    /// Key+value bytes streamed with the diagonal-reuse dataflow.
    pub kv_bytes_diagonal: u64,
    /// Key+value bytes a reuse-free dataflow would load (one copy per
    /// active cell).
    pub kv_bytes_naive: u64,
    /// Query bytes loaded (one row per tile row per pass).
    pub q_bytes: u64,
    /// Output bytes written (16-bit elements, once per query row).
    pub out_bytes: u64,
}

impl TrafficReport {
    /// Derives traffic for head dimension `d` from a plan.
    ///
    /// Inputs are 8-bit (1 byte/element), outputs 16-bit.
    #[must_use]
    pub fn from_plan(plan: &ExecutionPlan, d: usize) -> Self {
        let q_loads = plan.passes().iter().map(|p| p.tile_len as u64).sum();
        Self::from_parts(&plan.stats(), q_loads, plan.n(), d)
    }

    /// Derives traffic from precomputed plan figures — the form the
    /// lowered execution path uses, with no plan traversal. `q_loads` is
    /// the query-row load count summed over main passes.
    #[must_use]
    pub fn from_parts(stats: &PlanStats, q_loads: u64, n: usize, d: usize) -> Self {
        let d = d as u64;
        // Each streamed key vector brings its value vector along (k and v
        // share the diagonal path, Fig. 5).
        Self {
            kv_bytes_diagonal: stats.streamed_keys * d * 2,
            kv_bytes_naive: stats.naive_key_loads * d * 2,
            q_bytes: q_loads * d,
            out_bytes: n as u64 * d * 2,
        }
    }

    /// The reuse factor: naive loads over diagonal loads.
    #[must_use]
    pub fn reuse_factor(&self) -> f64 {
        if self.kv_bytes_diagonal == 0 {
            return 1.0;
        }
        self.kv_bytes_naive as f64 / self.kv_bytes_diagonal as f64
    }

    /// Total bytes moved with the diagonal dataflow.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.kv_bytes_diagonal + self.q_bytes + self.out_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::sliding_only;
    use salo_scheduler::HardwareMeta;

    #[test]
    fn reuse_factor_substantial_for_sliding_windows() {
        let p = sliding_only(512, 64).unwrap();
        let plan = ExecutionPlan::build(&p, HardwareMeta::default()).unwrap();
        let t = TrafficReport::from_plan(&plan, 64);
        // With a 32-row array, each streamed vector serves up to 32 rows.
        assert!(t.reuse_factor() > 8.0, "reuse {}", t.reuse_factor());
        assert!(t.reuse_factor() <= 32.0 + 1e-9);
        assert!(t.total_bytes() > 0);
        assert_eq!(t.out_bytes, 512 * 64 * 2);
    }

    #[test]
    fn default_is_zeroed() {
        let t = TrafficReport::default();
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(t.reuse_factor(), 1.0);
    }
}
