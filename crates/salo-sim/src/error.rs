use std::error::Error;
use std::fmt;

use salo_fixed::FixedError;
use salo_kernels::KernelError;
use salo_scheduler::SchedulerError;

/// Errors from the accelerator simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Input matrices do not match the plan's sequence length.
    ShapeMismatch {
        /// Plan sequence length.
        plan_n: usize,
        /// Matrix shape provided.
        got: (usize, usize),
    },
    /// Error from the fixed-point layer.
    Fixed(FixedError),
    /// Error from the kernel layer.
    Kernel(KernelError),
    /// Error from the scheduler layer.
    Scheduler(SchedulerError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ShapeMismatch { plan_n, got } => {
                write!(f, "plan expects {plan_n} rows, got {}x{}", got.0, got.1)
            }
            SimError::Fixed(e) => write!(f, "fixed-point error: {e}"),
            SimError::Kernel(e) => write!(f, "kernel error: {e}"),
            SimError::Scheduler(e) => write!(f, "scheduler error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Fixed(e) => Some(e),
            SimError::Kernel(e) => Some(e),
            SimError::Scheduler(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FixedError> for SimError {
    fn from(e: FixedError) -> Self {
        SimError::Fixed(e)
    }
}

impl From<KernelError> for SimError {
    fn from(e: KernelError) -> Self {
        SimError::Kernel(e)
    }
}

impl From<SchedulerError> for SimError {
    fn from(e: SchedulerError) -> Self {
        SimError::Scheduler(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = SimError::ShapeMismatch { plan_n: 8, got: (4, 2) };
        assert!(e.to_string().contains("8"));
        assert!(e.source().is_none());
        let e: SimError = FixedError::EmptySoftmaxRow.into();
        assert!(e.source().is_some());
        let e: SimError = SchedulerError::EmptyPlan.into();
        assert!(!e.to_string().is_empty());
    }
}
