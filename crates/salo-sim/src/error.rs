use std::error::Error;
use std::fmt;

use salo_fixed::FixedError;
use salo_kernels::KernelError;
use salo_scheduler::SchedulerError;

/// Errors from the accelerator simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Input matrices do not match the plan's sequence length.
    ShapeMismatch {
        /// Plan sequence length.
        plan_n: usize,
        /// Matrix shape provided.
        got: (usize, usize),
    },
    /// A plan offered for decoding contains a window operation that
    /// reaches a key in the future of its query — the pattern was not
    /// causally clipped, so it cannot be executed token by token.
    AnticausalPlan {
        /// The query position of the offending operation.
        dest: usize,
        /// The future key it attends.
        key: usize,
    },
    /// A decode session has produced every position its plan covers.
    DecodeCapacity {
        /// The plan's sequence capacity.
        n: usize,
    },
    /// A decode step was requested before the prompt covered every global
    /// token: position `position` is not decodable until `min_step`.
    DecodeNotPrimed {
        /// The position the step would produce.
        position: usize,
        /// The first decodable position.
        min_step: usize,
    },
    /// A decode token row has the wrong dimension for its session.
    TokenDim {
        /// The session's head dimension.
        expected: usize,
        /// The row length provided.
        got: usize,
    },
    /// A decode state was built for a different plan than the one it is
    /// being executed against (stale state from an earlier session).
    StaleDecodeState {
        /// Sequence capacity the state was initialized for.
        state_n: usize,
        /// Sequence capacity of the plan being executed.
        plan_n: usize,
    },
    /// A previous step failed after it had already appended the token to
    /// the session history, leaving the state inconsistent; it must be
    /// [`reset`](crate::DecodeState::reset) before further use.
    PoisonedDecodeState,
    /// The shared K/V page pool has no free page and is at its configured
    /// capacity. The failing session is left clean (the token was not
    /// ingested); the step may be retried once other sessions release
    /// pages.
    PagePoolExhausted {
        /// Pages currently handed out to sessions.
        in_use: usize,
        /// The pool's configured capacity.
        capacity: usize,
    },
    /// A work partition violated a structural invariant the partitioned
    /// executor relies on (spans tiling the item space, exactly-once op
    /// assignment, per-shard op ordering).
    PartitionInvariant {
        /// The invariant that failed.
        what: &'static str,
    },
    /// Error from the fixed-point layer.
    Fixed(FixedError),
    /// Error from the kernel layer.
    Kernel(KernelError),
    /// Error from the scheduler layer.
    Scheduler(SchedulerError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ShapeMismatch { plan_n, got } => {
                write!(f, "plan expects {plan_n} rows, got {}x{}", got.0, got.1)
            }
            SimError::AnticausalPlan { dest, key } => {
                write!(f, "plan is not causal: query {dest} attends future key {key}")
            }
            SimError::DecodeCapacity { n } => {
                write!(f, "decode session exhausted its capacity of {n} positions")
            }
            SimError::DecodeNotPrimed { position, min_step } => {
                write!(
                    f,
                    "position {position} is not decodable before {min_step}: \
                     prime the prompt (it must cover every global token) first"
                )
            }
            SimError::TokenDim { expected, got } => {
                write!(f, "token row has dimension {got}, session expects {expected}")
            }
            SimError::StaleDecodeState { state_n, plan_n } => {
                write!(
                    f,
                    "decode state belongs to a different plan (state capacity {state_n}, \
                     plan capacity {plan_n}): reset the state for this plan"
                )
            }
            SimError::PoisonedDecodeState => {
                write!(
                    f,
                    "decode state is poisoned by an earlier failed step: \
                     reset it before decoding again"
                )
            }
            SimError::PagePoolExhausted { in_use, capacity } => {
                write!(
                    f,
                    "K/V page pool exhausted: {in_use} of {capacity} pages in use, \
                     none free for a new allocation"
                )
            }
            SimError::PartitionInvariant { what } => {
                write!(f, "work partition invariant violated: {what}")
            }
            SimError::Fixed(e) => write!(f, "fixed-point error: {e}"),
            SimError::Kernel(e) => write!(f, "kernel error: {e}"),
            SimError::Scheduler(e) => write!(f, "scheduler error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Fixed(e) => Some(e),
            SimError::Kernel(e) => Some(e),
            SimError::Scheduler(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FixedError> for SimError {
    fn from(e: FixedError) -> Self {
        SimError::Fixed(e)
    }
}

impl From<KernelError> for SimError {
    fn from(e: KernelError) -> Self {
        SimError::Kernel(e)
    }
}

impl From<SchedulerError> for SimError {
    fn from(e: SchedulerError) -> Self {
        SimError::Scheduler(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = SimError::ShapeMismatch { plan_n: 8, got: (4, 2) };
        assert!(e.to_string().contains("8"));
        assert!(e.source().is_none());
        let e: SimError = FixedError::EmptySoftmaxRow.into();
        assert!(e.source().is_some());
        let e: SimError = SchedulerError::EmptyPlan.into();
        assert!(!e.to_string().is_empty());
    }
}
