//! Cycle accounting for the five-stage pass schedule (Fig. 6).
//!
//! A pass processes one query tile against one window chunk:
//!
//! | stage | work | cycles (serialized) |
//! |---|---|---|
//! | 1 | `Q x K^T`, output stationary | `d + R + C - 2` (systolic skew) |
//! | 2 | exponential | `exp_cycles` |
//! | 3 | row sum + reciprocal + broadcast | `C + inv_latency + 1` |
//! | 4 | normalize | `norm_cycles` |
//! | 5 | `S' x V`, weight stationary | `d + R + C - 2` |
//!
//! In pipelined mode (the hardware's double-buffered steady state), the
//! systolic skews of consecutive passes overlap: pass `p+1` begins feeding
//! stage 1 while pass `p` drains stages 3–5, so the steady-state initiation
//! interval is `2d + exp + C + inv + norm + sync` — the PE is busy `2d + 3`
//! of those cycles, giving the paper's >75 % utilization at `d = 64`,
//! `C = 32`.

use crate::{AcceleratorConfig, TimingParams};

/// Closed-form cycle model over an execution plan.
#[derive(Debug, Clone, Copy)]
pub struct CycleModel {
    rows: usize,
    cols: usize,
    timing: TimingParams,
    pipelined: bool,
}

/// Cycle totals for a plan execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Number of array passes (including supplemental global passes).
    pub passes: u64,
    /// Cycles attributed to each pass at steady state.
    pub per_pass: u64,
    /// One-time pipeline fill/drain cycles.
    pub fill_drain: u64,
    /// Total cycles for one head.
    pub per_head: u64,
    /// Total cycles for all heads (heads run back to back).
    pub total: u64,
}

impl CycleModel {
    /// Builds the model from an accelerator configuration.
    #[must_use]
    pub fn new(config: &AcceleratorConfig) -> Self {
        Self {
            rows: config.hw.pe_rows,
            cols: config.hw.pe_cols,
            timing: config.timing,
            pipelined: config.pipelined,
        }
    }

    /// Cycles of one fully-serialized pass for head dimension `d`.
    #[must_use]
    pub fn pass_latency(&self, d: usize) -> u64 {
        let skew = (self.rows + self.cols - 2) as u64;
        let stage1 = d as u64 + skew;
        let stage2 = u64::from(self.timing.exp_cycles);
        let stage3 = self.cols as u64 + u64::from(self.timing.inv_latency) + 1;
        let stage4 = u64::from(self.timing.norm_cycles);
        let stage5 = d as u64 + skew;
        stage1 + stage2 + stage3 + stage4 + stage5
    }

    /// Steady-state initiation interval between passes in pipelined mode.
    #[must_use]
    pub fn pass_interval(&self, d: usize) -> u64 {
        if !self.pipelined {
            return self.pass_latency(d);
        }
        2 * d as u64
            + u64::from(self.timing.exp_cycles)
            + self.cols as u64
            + u64::from(self.timing.inv_latency)
            + u64::from(self.timing.norm_cycles)
            + u64::from(self.timing.sync_cycles)
    }

    /// Busy MAC cycles of one active PE during a pass: `d` (stage 1) +
    /// 1 (exp MAC) + 1 (sum add) + 1 (normalize) + `d` (stage 5).
    #[must_use]
    pub fn pe_busy_cycles(&self, d: usize) -> u64 {
        2 * d as u64 + 3
    }

    /// Total cycles for `passes` array passes (plus `supplemental` global
    /// passes, charged one interval each) over `heads` heads.
    #[must_use]
    pub fn plan_cycles(
        &self,
        passes: u64,
        supplemental: u64,
        d: usize,
        heads: usize,
    ) -> CycleBreakdown {
        let all_passes = passes + supplemental;
        let per_pass = self.pass_interval(d);
        let fill_drain = if self.pipelined && all_passes > 0 {
            // First pass pays the full skew; the drain flushes the last.
            2 * (self.rows + self.cols - 2) as u64
        } else {
            0
        };
        let per_head = all_passes * per_pass + fill_drain;
        CycleBreakdown {
            passes: all_passes,
            per_pass,
            fill_drain,
            per_head,
            total: per_head * heads as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_model(pipelined: bool) -> CycleModel {
        let config = AcceleratorConfig { pipelined, ..Default::default() };
        CycleModel::new(&config)
    }

    #[test]
    fn serialized_pass_latency_formula() {
        let m = default_model(false);
        // d=64: (64+62) + 2 + (32+4+1) + 1 + (64+62) = 292.
        assert_eq!(m.pass_latency(64), 292);
        assert_eq!(m.pass_interval(64), 292, "unpipelined interval == latency");
    }

    #[test]
    fn pipelined_interval_formula() {
        let m = default_model(true);
        // 2*64 + 2 + 32 + 4 + 1 + 1 = 168.
        assert_eq!(m.pass_interval(64), 168);
        // Busy fraction at d=64: (2*64+3)/168 = 0.78 — the paper's >75 %.
        let busy = m.pe_busy_cycles(64) as f64 / m.pass_interval(64) as f64;
        assert!(busy > 0.75, "busy fraction {busy}");
    }

    #[test]
    fn pipelining_helps() {
        let pip = default_model(true);
        let ser = default_model(false);
        assert!(pip.pass_interval(64) < ser.pass_interval(64));
        // Speedup approaches latency/interval for long plans.
        let a = pip.plan_cycles(1000, 0, 64, 1).total;
        let b = ser.plan_cycles(1000, 0, 64, 1).total;
        assert!((b as f64 / a as f64) > 1.6, "pipelining speedup {}", b as f64 / a as f64);
    }

    #[test]
    fn heads_scale_linearly() {
        let m = default_model(true);
        let one = m.plan_cycles(100, 0, 64, 1);
        let twelve = m.plan_cycles(100, 0, 64, 12);
        assert_eq!(twelve.total, 12 * one.per_head);
    }

    #[test]
    fn supplemental_passes_charged() {
        let m = default_model(true);
        let without = m.plan_cycles(10, 0, 32, 1);
        let with = m.plan_cycles(10, 5, 32, 1);
        assert_eq!(with.passes, 15);
        assert!(with.total > without.total);
    }

    #[test]
    fn longformer_cycle_estimate_matches_paper_scale() {
        // Longformer-Base-4096: ~1992 active passes/head, 12 heads, d=64.
        let m = default_model(true);
        let b = m.plan_cycles(1992, 0, 64, 12);
        // Convert cycles at 1 GHz to ms; the paper's speedups place SALO's
        // Longformer layer around 4 ms.
        let ms = b.total as f64 * 1e-9 * 1e3;
        assert!((3.0..6.0).contains(&ms), "latency {ms} ms");
    }

    #[test]
    fn zero_passes_zero_cycles() {
        let m = default_model(true);
        let b = m.plan_cycles(0, 0, 64, 4);
        assert_eq!(b.total, 0);
    }
}
