//! Buffer-port bandwidth feasibility of the pipelined schedule.
//!
//! The pipelined pass interval assumes the next pass's operands stream in
//! while the current one drains — an assumption, unless the buffers can
//! actually feed it. Per initiation interval the array consumes one query
//! tile (`#row` vectors), up to `#row + #col - 1` key vectors and as many
//! value vectors, and emits `#row` outputs. This module turns that into
//! required bytes-per-cycle per buffer and checks them against port
//! widths, making the cycle model's premise explicit and testable
//! (SRAM macros of this class provide 16–32 B/cycle per port; the
//! default configuration assumes two 16 B ports on K/V and one on Q/out).

use crate::AcceleratorConfig;

/// Required vs provided buffer bandwidth for a pass interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthReport {
    /// Query-buffer demand (bytes/cycle).
    pub query_bpc: f64,
    /// Key-buffer demand (bytes/cycle).
    pub key_bpc: f64,
    /// Value-buffer demand (bytes/cycle).
    pub value_bpc: f64,
    /// Output-buffer demand (bytes/cycle, 16-bit elements).
    pub output_bpc: f64,
    /// Provided per-buffer bandwidth (bytes/cycle).
    pub provided_bpc: f64,
    /// Whether every buffer meets its demand.
    pub feasible: bool,
}

/// Per-port provided bandwidth assumed for the Table 1 instance
/// (two 16-byte ports on the K/V buffers — they feed the diagonal chain —
/// and one on Q/out).
pub const DEFAULT_PORT_BYTES_PER_CYCLE: f64 = 32.0;

/// Computes the bandwidth demand of the steady-state interval for head
/// dimension `d`.
#[must_use]
pub fn bandwidth_report(config: &AcceleratorConfig, d: usize, interval: u64) -> BandwidthReport {
    let interval = interval.max(1) as f64;
    let rows = config.hw.pe_rows as f64;
    let cols = config.hw.pe_cols as f64;
    let d = d as f64;
    // Per interval: a query tile, the streamed K/V diagonal, an output tile.
    let query_bpc = rows * d / interval;
    let kv_vectors = rows + cols - 1.0;
    let key_bpc = kv_vectors * d / interval;
    let value_bpc = key_bpc;
    let output_bpc = rows * d * 2.0 / interval;
    let provided = DEFAULT_PORT_BYTES_PER_CYCLE;
    BandwidthReport {
        query_bpc,
        key_bpc,
        value_bpc,
        output_bpc,
        provided_bpc: provided,
        feasible: query_bpc <= provided
            && key_bpc <= provided
            && value_bpc <= provided
            && output_bpc <= provided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CycleModel;

    #[test]
    fn table1_instance_is_feasible_at_d64() {
        let config = AcceleratorConfig::default();
        let interval = CycleModel::new(&config).pass_interval(64);
        let r = bandwidth_report(&config, 64, interval);
        // 63 K-vectors x 64 B over 168 cycles = 24 B/cycle.
        assert!((r.key_bpc - 24.0).abs() < 0.1, "key {}", r.key_bpc);
        assert!(r.feasible, "{r:?}");
        // Output dominates: 32 x 128 B over 168 cycles.
        assert!(r.output_bpc > r.query_bpc);
    }

    #[test]
    fn demand_is_self_limiting_in_head_dim() {
        // A pleasing closed property of the 32x32 instance: as d grows,
        // the interval grows at exactly the rate demand does, so the
        // per-cycle demand approaches (but never exceeds) the port width.
        let config = AcceleratorConfig::default();
        let model = CycleModel::new(&config);
        for d in [16usize, 64, 256, 1024] {
            let r = bandwidth_report(&config, d, model.pass_interval(d));
            assert!(r.feasible, "d = {d}: {r:?}");
            assert!(r.output_bpc < DEFAULT_PORT_BYTES_PER_CYCLE);
        }
    }

    #[test]
    fn tall_geometries_break_the_assumption() {
        // A 128x8 array emits 128 outputs per (short) interval: the
        // output buffer port cannot keep up — the cheap-looking geometry
        // from the latency table is not actually schedulable as modeled.
        let config = AcceleratorConfig {
            hw: salo_scheduler::HardwareMeta::new(128, 8, 1, 1).unwrap(),
            ..Default::default()
        };
        let interval = CycleModel::new(&config).pass_interval(64);
        let r = bandwidth_report(&config, 64, interval);
        assert!(!r.feasible, "{r:?}");
        assert!(r.output_bpc > DEFAULT_PORT_BYTES_PER_CYCLE);
    }

    #[test]
    fn demand_scales_with_geometry() {
        let config = AcceleratorConfig::default();
        let mut tall = config.clone();
        tall.hw = salo_scheduler::HardwareMeta::new(128, 8, 1, 1).unwrap();
        let i1 = CycleModel::new(&config).pass_interval(64);
        let i2 = CycleModel::new(&tall).pass_interval(64);
        let base = bandwidth_report(&config, 64, i1);
        let tall_r = bandwidth_report(&tall, 64, i2);
        // Taller tiles emit more outputs per (shorter) interval.
        assert!(tall_r.output_bpc > base.output_bpc);
    }
}
