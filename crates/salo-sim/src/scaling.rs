//! Area and power scaling with accelerator geometry.
//!
//! Table 1 reports one synthesized point: 32×32 PEs + global units,
//! 112 KB of buffers, 532.66 mW and 4.56 mm² at FreePDK 45 nm / 1 GHz.
//! This module decomposes that point into per-unit costs (PE, buffer KB,
//! weighted-sum module, LUT bit) using standard-cell share estimates, so
//! design-space sweeps (the `ablation_array_geometry` bench, the
//! `ablation_study` example) can report performance-per-watt and per-mm²
//! rather than cycles alone.
//!
//! Shares used (typical for MAC-array accelerators of this class and
//! documented as estimates, not synthesis results): PE datapaths ~62 % of
//! power and ~55 % of area; SRAM buffers ~28 % of power and ~35 % of area;
//! weighted-sum modules, LUTs, control and wiring take the remainder. The
//! Table 1 instance reproduces its published totals *exactly* by
//! construction; other geometries scale linearly in their unit counts.

use crate::AcceleratorConfig;

/// Estimated area/power of an accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaPowerEstimate {
    /// Total power (W).
    pub power_w: f64,
    /// Total area (mm²).
    pub area_mm2: f64,
    /// Power share of the PE datapaths (W).
    pub pe_power_w: f64,
    /// Power share of the SRAM buffers (W).
    pub buffer_power_w: f64,
    /// Power share of WSMs, LUTs, control, clock tree (W).
    pub other_power_w: f64,
}

/// Per-unit cost model calibrated to the Table 1 synthesis point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaPowerModel {
    /// Power per PE (W), including its LUT share.
    pub pe_power_w: f64,
    /// Power per KB of buffer SRAM (W).
    pub sram_power_w_per_kb: f64,
    /// Power per weighted-sum module (W).
    pub wsm_power_w: f64,
    /// Fixed power (control, clock) (W).
    pub fixed_power_w: f64,
    /// Area per PE (mm²).
    pub pe_area_mm2: f64,
    /// Area per KB of buffer SRAM (mm²).
    pub sram_area_mm2_per_kb: f64,
    /// Area per weighted-sum module (mm²).
    pub wsm_area_mm2: f64,
    /// Fixed area (mm²).
    pub fixed_area_mm2: f64,
}

impl AreaPowerModel {
    /// The model calibrated so the Table 1 instance reproduces 532.66 mW
    /// and 4.56 mm² exactly.
    #[must_use]
    pub fn calibrated() -> Self {
        let reference = AcceleratorConfig::default();
        let pes = total_units(&reference);
        let buffers_kb = reference.buffers.query_kb
            + reference.buffers.key_kb
            + reference.buffers.value_kb
            + reference.buffers.output_kb;
        let wsms = reference.hw.pe_rows + reference.hw.global_rows;
        // Share estimates (see module docs).
        let (pe_pshare, sram_pshare, wsm_pshare) = (0.62, 0.28, 0.04);
        let (pe_ashare, sram_ashare, wsm_ashare) = (0.55, 0.35, 0.04);
        let p = reference.power_w;
        let a = reference.area_mm2;
        Self {
            pe_power_w: p * pe_pshare / pes as f64,
            sram_power_w_per_kb: p * sram_pshare / buffers_kb as f64,
            wsm_power_w: p * wsm_pshare / wsms as f64,
            fixed_power_w: p * (1.0 - pe_pshare - sram_pshare - wsm_pshare),
            pe_area_mm2: a * pe_ashare / pes as f64,
            sram_area_mm2_per_kb: a * sram_ashare / buffers_kb as f64,
            wsm_area_mm2: a * wsm_ashare / wsms as f64,
            fixed_area_mm2: a * (1.0 - pe_ashare - sram_ashare - wsm_ashare),
        }
    }

    /// Estimates a configuration's area and power.
    #[must_use]
    pub fn estimate(&self, config: &AcceleratorConfig) -> AreaPowerEstimate {
        let pes = total_units(config) as f64;
        let buffers_kb = (config.buffers.query_kb
            + config.buffers.key_kb
            + config.buffers.value_kb
            + config.buffers.output_kb) as f64;
        let wsms = (config.hw.pe_rows + config.hw.global_rows) as f64;
        let pe_power_w = pes * self.pe_power_w;
        let buffer_power_w = buffers_kb * self.sram_power_w_per_kb;
        let other_power_w = wsms * self.wsm_power_w + self.fixed_power_w;
        AreaPowerEstimate {
            power_w: pe_power_w + buffer_power_w + other_power_w,
            area_mm2: pes * self.pe_area_mm2
                + buffers_kb * self.sram_area_mm2_per_kb
                + wsms * self.wsm_area_mm2
                + self.fixed_area_mm2,
            pe_power_w,
            buffer_power_w,
            other_power_w,
        }
    }
}

/// PEs including the global row(s) and column(s).
fn total_units(config: &AcceleratorConfig) -> usize {
    config.hw.array_pes()
        + config.hw.global_rows * config.hw.pe_cols
        + config.hw.global_cols * config.hw.pe_rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_scheduler::HardwareMeta;

    #[test]
    fn table1_point_reproduced_exactly() {
        let model = AreaPowerModel::calibrated();
        let e = model.estimate(&AcceleratorConfig::default());
        assert!((e.power_w - 0.53266).abs() < 1e-12, "power {}", e.power_w);
        assert!((e.area_mm2 - 4.56).abs() < 1e-12, "area {}", e.area_mm2);
        assert!(e.pe_power_w > e.buffer_power_w);
        assert!(e.buffer_power_w > 0.0);
    }

    #[test]
    fn power_scales_with_pe_count() {
        let model = AreaPowerModel::calibrated();
        let half = AcceleratorConfig {
            hw: HardwareMeta::new(16, 32, 1, 1).unwrap(),
            ..Default::default()
        };
        let small = model.estimate(&half);
        let full = model.estimate(&AcceleratorConfig::default());
        assert!(small.power_w < full.power_w);
        assert!(small.area_mm2 < full.area_mm2);
        // PE share halves (plus the smaller global column).
        assert!(small.pe_power_w < 0.6 * full.pe_power_w);
    }

    #[test]
    fn buffers_cost_area_and_power() {
        let model = AreaPowerModel::calibrated();
        let mut big = AcceleratorConfig::default();
        big.buffers.key_kb *= 4;
        big.buffers.value_kb *= 4;
        let e = model.estimate(&big);
        let base = model.estimate(&AcceleratorConfig::default());
        assert!(e.power_w > base.power_w);
        assert!(e.area_mm2 > base.area_mm2);
    }

    #[test]
    fn equal_pe_budgets_cost_about_the_same() {
        // 64x16 with its global units differs from 32x32 only via the
        // global row/column lengths and WSM count.
        let model = AreaPowerModel::calibrated();
        let tall = AcceleratorConfig {
            hw: HardwareMeta::new(64, 16, 1, 1).unwrap(),
            ..Default::default()
        };
        let a = model.estimate(&tall);
        let b = model.estimate(&AcceleratorConfig::default());
        assert!((a.power_w / b.power_w - 1.0).abs() < 0.1, "{} vs {}", a.power_w, b.power_w);
    }
}
