//! Deterministic work partitioning for the multi-head execution datapath.
//!
//! A [`LoweredPlan`] executed over `H` heads is a bag of independent
//! per-op jobs with exactly one ordering constraint: ops sharing a
//! destination row merge into that row's weighted-sum accumulator, and
//! [`merge_partials_into`](salo_fixed::merge_partials_into) is **not**
//! associative — reordering a row's merges changes low bits. Merges for
//! *different* destination rows never interact, so the partitioner shards
//! the flat item space `head * n + dest_row` into contiguous spans and
//! assigns every op to the shard owning its destination item, preserving
//! plan order within each row. Any shard count therefore reproduces the
//! sequential execution bit for bit — the determinism-by-construction
//! claim the partition proptest suite pins down.
//!
//! Spans are balanced by a static cost model (`key_len` per op plus a
//! fixed per-op overhead), computed once per `(plan, heads, parallelism)`
//! and entirely input-independent: the same plan always partitions the
//! same way, so scheduling decisions can never leak into outputs.

use crate::{LoweredPlan, SimError};

/// Modeled fixed overhead of one lowered op (softmax setup, reciprocal,
/// merge) in key-visit units, added to its `key_len` when balancing.
pub const OP_BASE_COST: u64 = 8;

/// One shard of a [`Partition`]: a contiguous span of the flat
/// `head * n + dest_row` item space plus the ops whose destinations fall
/// inside it, in execution order (head-major, then plan op order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    item_start: usize,
    item_end: usize,
    /// `(head, op index into the plan's op list)`, execution order.
    ops: Vec<(u32, u32)>,
    cost: u64,
}

impl Shard {
    /// First item (inclusive) of the span this shard owns.
    #[must_use]
    pub fn item_start(&self) -> usize {
        self.item_start
    }

    /// One past the last item of the span this shard owns.
    #[must_use]
    pub fn item_end(&self) -> usize {
        self.item_end
    }

    /// Number of accumulator rows (items) the shard owns.
    #[must_use]
    pub fn num_items(&self) -> usize {
        self.item_end - self.item_start
    }

    /// The ops assigned to this shard as `(head, op_index)` pairs, in the
    /// order the shard executes them: ascending head, then ascending op
    /// index — i.e. plan order within every destination row.
    #[must_use]
    pub fn ops(&self) -> &[(u32, u32)] {
        &self.ops
    }

    /// Modeled cost of the shard (key visits + per-op overhead).
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.cost
    }
}

/// A deterministic assignment of a lowered program's per-head ops to
/// `parallelism` shards, each owning a contiguous span of destination
/// rows. See the module docs for why this sharding is bit-transparent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    shards: Vec<Shard>,
    num_heads: usize,
    n: usize,
}

impl Partition {
    /// Builds the partition of `lowered` over `num_heads` heads into (at
    /// most) `parallelism` contiguous, cost-balanced shards.
    ///
    /// Purely structural: depends only on the plan's op list, the head
    /// count and the shard count — never on input values.
    #[must_use]
    pub fn build(lowered: &LoweredPlan, num_heads: usize, parallelism: usize) -> Self {
        let p = parallelism.max(1);
        let n = lowered.n();
        let items = num_heads * n;

        // Per-row cost within one head; identical across heads because
        // every head runs the same plan.
        let mut row_cost = vec![0u64; n];
        for op in lowered.ops() {
            row_cost[op.dest as usize] += u64::from(op.key_len) + OP_BASE_COST;
        }
        let head_cost: u64 = row_cost.iter().sum();
        let total = head_cost * num_heads as u64;

        // Span boundaries: walk the item space once, cutting at the
        // cumulative-cost targets `total * s / p`.
        let mut bounds = Vec::with_capacity(p + 1);
        bounds.push(0usize);
        let mut cum = 0u64;
        let mut item = 0usize;
        for s in 1..p {
            let target = total * s as u64 / p as u64;
            while item < items && cum < target {
                cum += row_cost[item % n];
                item += 1;
            }
            bounds.push(item);
        }
        bounds.push(items);

        let mut shards: Vec<Shard> = bounds
            .windows(2)
            .map(|w| Shard { item_start: w[0], item_end: w[1], ops: Vec::new(), cost: 0 })
            .collect();

        // Assign ops head-major in plan order; within a shard this yields
        // ascending (head, op index) automatically.
        for h in 0..num_heads {
            for (i, op) in lowered.ops().iter().enumerate() {
                let it = h * n + op.dest as usize;
                let s = bounds.partition_point(|&b| b <= it) - 1;
                shards[s].ops.push((h as u32, i as u32));
                shards[s].cost += u64::from(op.key_len) + OP_BASE_COST;
            }
        }

        Self { shards, num_heads, n }
    }

    /// The shards, ascending by item span. Spans tile `[0, heads * n)`
    /// exactly; empty spans (more shards than work) carry no ops.
    #[must_use]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of shards (= the requested parallelism, clamped to ≥ 1).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Heads this partition was built for.
    #[must_use]
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Sequence length of the underlying plan.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total ops across all shards (= `heads * plan ops` when every op
    /// was assigned exactly once).
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.shards.iter().map(|s| s.ops.len()).sum()
    }

    /// Per-shard op counts — the balance figures the bench records.
    #[must_use]
    pub fn op_counts(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.ops.len()).collect()
    }

    /// Validates the structural invariants the executor relies on:
    /// spans tile the item space, every op of every head is assigned
    /// exactly once, and each shard's ops target only its own span.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PartitionInvariant`] naming the violated
    /// invariant. Exercised by tests; the executor assumes validity.
    pub fn validate(&self, lowered: &LoweredPlan) -> Result<(), SimError> {
        let items = self.num_heads * self.n;
        let mut expect = 0usize;
        for shard in &self.shards {
            if shard.item_start != expect || shard.item_end < shard.item_start {
                return Err(SimError::PartitionInvariant {
                    what: "spans must tile the item space",
                });
            }
            expect = shard.item_end;
        }
        if expect != items {
            return Err(SimError::PartitionInvariant { what: "spans must cover every item" });
        }
        let num_ops = lowered.ops().len();
        let mut seen = vec![false; self.num_heads * num_ops];
        for shard in &self.shards {
            let mut prev: Option<(u32, u32)> = None;
            for &(h, i) in &shard.ops {
                let (h_us, i_us) = (h as usize, i as usize);
                if h_us >= self.num_heads || i_us >= num_ops {
                    return Err(SimError::PartitionInvariant { what: "op reference out of range" });
                }
                let item = h_us * self.n + lowered.ops()[i_us].dest as usize;
                if item < shard.item_start || item >= shard.item_end {
                    return Err(SimError::PartitionInvariant {
                        what: "op assigned outside its shard's span",
                    });
                }
                if std::mem::replace(&mut seen[h_us * num_ops + i_us], true) {
                    return Err(SimError::PartitionInvariant { what: "op assigned twice" });
                }
                if let Some(p) = prev {
                    if p >= (h, i) {
                        return Err(SimError::PartitionInvariant {
                            what: "shard ops must ascend by (head, op index)",
                        });
                    }
                }
                prev = Some((h, i));
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err(SimError::PartitionInvariant { what: "op never assigned" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::longformer;
    use salo_scheduler::{ExecutionPlan, HardwareMeta};

    fn lowered(n: usize, w: usize, g: usize) -> LoweredPlan {
        let pattern = longformer(n, w, g).unwrap();
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(8, 8, 1, 1).unwrap()).unwrap();
        LoweredPlan::lower(&plan)
    }

    #[test]
    fn partition_is_valid_across_shard_and_head_counts() {
        let low = lowered(48, 11, 2);
        for heads in [1usize, 3, 8] {
            for p in [1usize, 2, 4, 7, 64] {
                let part = Partition::build(&low, heads, p);
                assert_eq!(part.num_shards(), p);
                part.validate(&low).unwrap();
                assert_eq!(part.total_ops(), heads * low.ops().len());
            }
        }
    }

    #[test]
    fn single_shard_owns_everything_in_plan_order() {
        let low = lowered(32, 9, 1);
        let part = Partition::build(&low, 2, 1);
        let shard = &part.shards()[0];
        assert_eq!(shard.item_start(), 0);
        assert_eq!(shard.item_end(), 2 * low.n());
        let expected: Vec<(u32, u32)> =
            (0..2u32).flat_map(|h| (0..low.ops().len() as u32).map(move |i| (h, i))).collect();
        assert_eq!(shard.ops(), &expected[..], "head-major plan order");
    }

    #[test]
    fn costs_are_roughly_balanced() {
        let low = lowered(64, 13, 2);
        let part = Partition::build(&low, 4, 4);
        let costs: Vec<u64> = part.shards().iter().map(Shard::cost).collect();
        let max = *costs.iter().max().unwrap();
        let min = *costs.iter().min().unwrap();
        // Contiguous row-granular balancing: no shard more than ~2x any
        // other on a uniform-ish hybrid pattern.
        assert!(max <= 2 * min.max(1), "imbalanced shard costs {costs:?}");
    }

    #[test]
    fn more_shards_than_items_yields_empty_tail_shards() {
        let low = lowered(12, 5, 1);
        let part = Partition::build(&low, 1, 64);
        part.validate(&low).unwrap();
        assert_eq!(part.num_shards(), 64);
        assert!(part.shards().iter().any(|s| s.num_items() == 0));
        assert_eq!(part.total_ops(), low.ops().len());
    }

    #[test]
    fn build_is_deterministic() {
        let low = lowered(40, 9, 2);
        assert_eq!(Partition::build(&low, 4, 7), Partition::build(&low, 4, 7));
    }
}
