//! Streaming decode: per-step hybrid-sparse attention against persistent
//! quantized K/V state.
//!
//! Autoregressive generation produces one query position per step, each
//! attending a growing history through the same window+global structure
//! the prefill datapath executes in one shot. Re-lowering (or worse,
//! re-executing) the full plan per token would be quadratic in the
//! generation length; instead this module compiles the prefill's
//! [`LoweredPlan`] **once** into a step-indexed program and executes one
//! position per call against arenas that persist across the whole
//! generation:
//!
//! * [`DecodePlan::lower`] re-buckets the lowered op list by destination
//!   row, preserving the prefill's per-row op order — window-row softmax
//!   parts first-chunk-to-last, global-column cells interleaved exactly
//!   where the prefill merges them. Executing row `t`'s bucket therefore
//!   performs the *same fixed-point operations in the same order* as the
//!   full prefill does for that row, which is what makes decode
//!   bit-identical to the causal-prefill oracle (outputs, `weights_q16`
//!   and saturation counts — asserted by `tests/decode.rs`).
//! * [`DecodeState`] owns the session: quantized K/V arenas that grow by
//!   one row per token, the stored query rows of global tokens, and the
//!   *running global-duty partials* — each global token's output row,
//!   advanced incrementally as its pending ops' keys enter the history.
//!   By the end of a full generation the global rows have executed
//!   exactly the prefill's global-duty ops in the prefill's order, so
//!   they too are bit-identical to prefill rows.
//! * [`SpatialAccelerator::execute_step`] runs one token: quantize and
//!   append K/V, execute the step's ops through the stage 1–5 fixed-point
//!   kernels (reusing the caller's [`ExecScratch`] buffers), advance the
//!   global-duty partials, and return the new position's output row.
//!
//! The plan must come from a **causally clipped** pattern
//! ([`HybridPattern::causal`](salo_patterns::HybridPattern::causal) /
//! [`decode_view`](salo_patterns::HybridPattern::decode_view)): lowering
//! verifies that no window op reaches a future key and rejects anticausal
//! plans.

use salo_fixed::{ExpLut, Fix16x8, Fix8x4, MacSaturation, PartialRow, RecipUnit};
use salo_scheduler::ExecutionPlan;

use crate::exec::{run_op, ExecScratch};
use crate::{LoweredOp, LoweredOpKind, LoweredPlan, SimError, SpatialAccelerator};

/// One global token's incremental row program: the prefill's ops for that
/// destination, in prefill order, plus the gating key that tells the
/// session when each op's inputs exist.
#[derive(Debug, Clone, PartialEq)]
struct GlobalRowProgram {
    /// The global token (sequence position).
    token: u32,
    /// Op range in the owning plan's op list.
    start: u32,
    end: u32,
    /// Per op (parallel to the range): the largest key it reads. The op
    /// becomes runnable once the history covers both this key and the
    /// token's own query row.
    max_keys: Vec<u32>,
}

/// A [`LoweredPlan`] compiled for token-by-token execution.
///
/// Produced once per compiled plan and shared across every decode session
/// of that pattern/shape (it is immutable; serving pins one behind an
/// `Arc` per session).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodePlan {
    n: usize,
    min_step: usize,
    globals: Vec<u32>,
    /// Step ops, contiguous per destination row, prefill order within
    /// each row.
    ops: Vec<LoweredOp>,
    /// Key arena the ops slice into (rebuilt compactly during lowering).
    keys: Vec<u32>,
    /// Per sequence position: op range into `ops` (empty for global rows,
    /// whose work lives in `global_rows`).
    step_ranges: Vec<(u32, u32)>,
    global_rows: Vec<GlobalRowProgram>,
    max_row_keys: usize,
    /// Structural fingerprint of the whole program — the stale-state
    /// guard that ties a [`DecodeState`] to the plan it was reset for.
    fingerprint: u64,
}

impl DecodePlan {
    /// Compiles a lowered plan into its step-indexed decode program.
    ///
    /// `plan` supplies the global-token set; `lowered` must be the
    /// lowering of that same plan (as stored side by side in
    /// `CompiledPlan`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AnticausalPlan`] if any window op attends a key
    /// after its query — the pattern was not causally clipped and cannot
    /// be decoded incrementally.
    pub fn lower(plan: &ExecutionPlan, lowered: &LoweredPlan) -> Result<Self, SimError> {
        let n = lowered.n();
        let globals: Vec<u32> = plan.globals().iter().map(|&g| g as u32).collect();
        let min_step = plan.globals().iter().max().map_or(0, |&g| g + 1);

        // Bucket the lowered ops by destination, preserving prefill order
        // within each destination — the order the prefill's weighted-sum
        // module merges that row's parts in.
        let mut step_buckets: Vec<Vec<LoweredOp>> = vec![Vec::new(); n];
        let mut global_buckets: Vec<Vec<LoweredOp>> = vec![Vec::new(); globals.len()];
        for op in lowered.ops() {
            let dest = op.dest as usize;
            match globals.binary_search(&op.dest) {
                Ok(gi) => global_buckets[gi].push(*op),
                Err(_) => {
                    if op.kind == LoweredOpKind::Row {
                        // Window ops must be causal; global-column cells
                        // (SingleKey) are gated by `min_step` instead.
                        if let Some(&k) = lowered.op_keys(op).iter().max() {
                            if k as usize > dest {
                                return Err(SimError::AnticausalPlan { dest, key: k as usize });
                            }
                        }
                    }
                    step_buckets[dest].push(*op);
                }
            }
        }

        // Flatten into one op list with a compact key arena.
        let mut ops = Vec::with_capacity(lowered.ops().len());
        let mut keys = Vec::with_capacity(lowered.keys().len());
        let push_ops = |bucket: &[LoweredOp], keys: &mut Vec<u32>, ops: &mut Vec<LoweredOp>| {
            let start = ops.len() as u32;
            for op in bucket {
                let key_start = keys.len() as u32;
                keys.extend_from_slice(lowered.op_keys(op));
                ops.push(LoweredOp { key_start, ..*op });
            }
            (start, ops.len() as u32)
        };
        let mut step_ranges = Vec::with_capacity(n);
        for bucket in &step_buckets {
            step_ranges.push(push_ops(bucket, &mut keys, &mut ops));
        }
        let mut global_rows = Vec::with_capacity(globals.len());
        for (gi, bucket) in global_buckets.iter().enumerate() {
            let (start, end) = push_ops(bucket, &mut keys, &mut ops);
            let max_keys = bucket
                .iter()
                .map(|op| lowered.op_keys(op).iter().copied().max().unwrap_or(0))
                .collect();
            global_rows.push(GlobalRowProgram { token: globals[gi], start, end, max_keys });
        }

        // Hash the complete program: two plans that differ anywhere in
        // their ops or key arenas fingerprint apart, so a state reset for
        // one cannot silently execute against the other (same capacity
        // and global count included). Paid once per lowering.
        let mut h = salo_patterns::StableHasher::new();
        h.write_usize(n);
        h.write_usize(min_step);
        h.write_usize(globals.len());
        for &g in &globals {
            h.write_usize(g as usize);
        }
        h.write_usize(ops.len());
        for op in &ops {
            h.write_usize(match op.kind {
                LoweredOpKind::Row => 0,
                LoweredOpKind::SingleKey => 1,
            });
            h.write_usize(op.dest as usize);
            h.write_usize(op.key_len as usize);
        }
        h.write_usize(keys.len());
        for &k in &keys {
            h.write_usize(k as usize);
        }
        let fingerprint = h.finish();

        Ok(Self {
            n,
            min_step,
            globals,
            ops,
            keys,
            step_ranges,
            global_rows,
            max_row_keys: lowered.max_row_keys(),
            fingerprint,
        })
    }

    /// Structural fingerprint of the step program (stable across runs).
    /// [`DecodeState`]s record it at reset; executing a state against a
    /// plan with a different fingerprint is refused as stale.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Sequence capacity: the maximum number of positions a session over
    /// this plan can hold (prompt + generated).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// First decodable position: the one after the last global token.
    /// Positions before it form the prompt and must be primed.
    #[must_use]
    pub fn min_step(&self) -> usize {
        self.min_step
    }

    /// The global tokens, ascending.
    #[must_use]
    pub fn globals(&self) -> &[u32] {
        &self.globals
    }

    /// The ops computing position `t`'s output row, in prefill merge
    /// order. Empty for global positions (their rows accumulate via the
    /// running global-duty partials) and for rows with no active keys.
    #[must_use]
    pub fn step_ops(&self, t: usize) -> &[LoweredOp] {
        let (start, end) = self.step_ranges[t];
        &self.ops[start as usize..end as usize]
    }

    /// Key list of one op.
    #[must_use]
    pub fn op_keys(&self, op: &LoweredOp) -> &[u32] {
        &self.keys[op.key_start as usize..(op.key_start + op.key_len) as usize]
    }

    /// The longest key list of any op — scratch high-water mark.
    #[must_use]
    pub fn max_row_keys(&self) -> usize {
        self.max_row_keys
    }

    /// Total keys read over a full generation (work proxy for benches).
    #[must_use]
    pub fn total_step_keys(&self) -> u64 {
        self.ops.iter().map(|op| u64::from(op.key_len)).sum()
    }
}

/// The persistent state of one decode session (one head).
///
/// Owns the quantized K/V arenas (one appended row per token), the stored
/// query rows of global tokens, and the running global-duty partials.
/// Reusable across sessions of different shapes via [`reset`](Self::reset)
/// — reuse is bit-transparent, like `ExecScratch`.
#[derive(Debug, Clone)]
pub struct DecodeState {
    /// Head dimension.
    d: usize,
    /// Capacity this state was initialized for (error reporting).
    n: usize,
    /// Fingerprint of the plan this state was reset for (stale-state
    /// guard — catches even same-capacity, same-global-count plans).
    plan_fp: u64,
    /// Tokens ingested so far; the next token lands at this position.
    len: usize,
    /// Quantized keys, `len * d` row-major.
    kq: Vec<Fix8x4>,
    /// Quantized values, `len * d` row-major.
    vq: Vec<Fix8x4>,
    /// The current token's quantized, scale-folded query row.
    q_step: Vec<Fix8x4>,
    /// Stored query rows of global tokens (filled when each is ingested).
    global_q: Vec<Vec<Fix8x4>>,
    /// Running global-duty partials: one accumulator per global token.
    global_acc: Vec<PartialRow>,
    /// Next pending op (index into the token's program) per global row.
    global_cursor: Vec<usize>,
    /// The current step's output accumulator.
    acc: PartialRow,
    /// Cumulative saturation events over the session.
    sat: MacSaturation,
    /// Set when a step failed after the token was already appended to the
    /// history: the state is inconsistent (partial K/V, off-by-one
    /// position) and every further advance is rejected until a reset.
    poisoned: bool,
}

impl DecodeState {
    /// Creates an empty session state for `plan` with head dimension `d`.
    #[must_use]
    pub fn new(plan: &DecodePlan, d: usize) -> Self {
        let mut state = Self {
            d: 0,
            n: 0,
            plan_fp: 0,
            len: 0,
            kq: Vec::new(),
            vq: Vec::new(),
            q_step: Vec::new(),
            global_q: Vec::new(),
            global_acc: Vec::new(),
            global_cursor: Vec::new(),
            acc: PartialRow::empty(0),
            sat: MacSaturation::default(),
            poisoned: false,
        };
        state.reset(plan, d);
        state
    }

    /// Rebinds the state to a (possibly different) plan and head
    /// dimension, clearing every arena but keeping their capacity — the
    /// worker-pool form of session switching. A reset state is
    /// indistinguishable from a fresh one.
    pub fn reset(&mut self, plan: &DecodePlan, d: usize) {
        self.d = d;
        self.n = plan.n();
        self.plan_fp = plan.fingerprint();
        self.len = 0;
        self.kq.clear();
        self.vq.clear();
        self.kq.reserve(plan.n() * d);
        self.vq.reserve(plan.n() * d);
        self.q_step.clear();
        self.global_q.clear();
        self.global_q.resize(plan.globals.len(), Vec::new());
        self.global_acc.clear();
        self.global_acc.resize(plan.globals.len(), PartialRow::empty(d));
        self.global_cursor.clear();
        self.global_cursor.resize(plan.globals.len(), 0);
        self.acc = PartialRow::empty(d);
        self.sat = MacSaturation::default();
        self.poisoned = false;
    }

    /// Tokens ingested so far — the position the next token will occupy.
    #[must_use]
    pub fn position(&self) -> usize {
        self.len
    }

    /// Head dimension of the session.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.d
    }

    /// Cumulative MAC saturation events over the session (prompt, steps
    /// and global-duty advances).
    #[must_use]
    pub fn saturation_events(&self) -> u64 {
        self.sat.events
    }

    /// Whether a failed step has left this state inconsistent. A
    /// poisoned state rejects every advance with
    /// [`SimError::PoisonedDecodeState`] until [`reset`](Self::reset).
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Number of running global-duty partials (= global tokens).
    #[must_use]
    pub fn num_globals(&self) -> usize {
        self.global_acc.len()
    }

    /// The current output of global row `i` (by ascending token order):
    /// the 16-bit row and its softmax weight, as accumulated so far. After
    /// a full generation this equals the causal prefill's row for that
    /// token, bit for bit.
    #[must_use]
    pub fn global_row_output(&self, i: usize) -> (Vec<Fix16x8>, i64) {
        let acc = &self.global_acc[i];
        (acc.out_q19.iter().map(|&o| Fix16x8::from_q19_acc(o)).collect(), acc.weight_q16)
    }

    /// Global-duty ops not yet runnable (waiting for future keys).
    #[must_use]
    pub fn pending_global_ops(&self, plan: &DecodePlan) -> usize {
        plan.global_rows
            .iter()
            .zip(&self.global_cursor)
            .map(|(g, &c)| (g.end - g.start) as usize - c)
            .sum()
    }
}

/// The output of one decode step: position `t`'s attention row in the
/// same formats the prefill reports per row.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutput {
    /// The position this step produced.
    pub position: usize,
    /// Output row in the 16-bit accelerator format.
    pub raw: Vec<Fix16x8>,
    /// The row dequantized to `f32`.
    pub output: Vec<f32>,
    /// The row's softmax weight `W = Σ exp` (Q.16).
    pub weight_q16: i64,
    /// MAC saturation events attributed to this token (its own ops plus
    /// any global-duty ops it unblocked).
    pub saturation_events: u64,
}

impl SpatialAccelerator {
    /// Ingests one prompt token without computing an output row: K/V are
    /// quantized and appended, global query rows are captured, and any
    /// global-duty ops whose inputs are now complete run. Returns the MAC
    /// saturation events the token caused.
    ///
    /// The session's first `DecodePlan::min_step` tokens must arrive this
    /// way (they include every global token); longer prompts are allowed
    /// — their rows simply keep the outputs the prefill computed for
    /// them.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DecodeCapacity`] past the plan's capacity,
    /// [`SimError::TokenDim`] on a row-length mismatch, or
    /// [`SimError::StaleDecodeState`] if `state` was initialized for a
    /// different plan.
    #[allow(clippy::too_many_arguments)] // mirrors execute_lowered's surface
    pub fn prime_token(
        &self,
        plan: &DecodePlan,
        state: &mut DecodeState,
        q_t: &[f32],
        k_t: &[f32],
        v_t: &[f32],
        scale: f32,
        scratch: &mut ExecScratch,
    ) -> Result<u64, SimError> {
        let before = state.sat.events;
        self.advance(plan, state, q_t, k_t, v_t, scale, scratch, false)?;
        Ok(state.sat.events - before)
    }

    /// Executes one decode step: ingests the token at the next position
    /// and returns that position's output row, computed through the exact
    /// prefill datapath (stages 1–5 per op, weighted-sum merges in
    /// prefill order). Bit-identical to the corresponding causal-prefill
    /// row.
    ///
    /// # Errors
    ///
    /// As [`prime_token`](Self::prime_token), plus
    /// [`SimError::DecodeNotPrimed`] if the prompt has not covered every
    /// global token yet, and fixed-point errors on numeric degeneracy.
    #[allow(clippy::too_many_arguments)] // mirrors execute_lowered's surface
    pub fn execute_step(
        &self,
        plan: &DecodePlan,
        state: &mut DecodeState,
        q_t: &[f32],
        k_t: &[f32],
        v_t: &[f32],
        scale: f32,
        scratch: &mut ExecScratch,
    ) -> Result<StepOutput, SimError> {
        let _span = salo_trace::Tracer::global().span_with(
            "sim.execute_step",
            "sim",
            state.position() as u64,
        );
        self.advance(plan, state, q_t, k_t, v_t, scale, scratch, true)
            .map(|out| out.expect("compute=true always yields a step output"))
    }

    /// The shared ingest path of [`prime_token`](Self::prime_token) and
    /// [`execute_step`](Self::execute_step).
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &self,
        plan: &DecodePlan,
        state: &mut DecodeState,
        q_t: &[f32],
        k_t: &[f32],
        v_t: &[f32],
        scale: f32,
        scratch: &mut ExecScratch,
        compute: bool,
    ) -> Result<Option<StepOutput>, SimError> {
        if state.poisoned {
            return Err(SimError::PoisonedDecodeState);
        }
        if state.plan_fp != plan.fingerprint() {
            return Err(SimError::StaleDecodeState { state_n: state.n, plan_n: plan.n() });
        }
        let d = state.d;
        for row in [q_t, k_t, v_t] {
            if row.len() != d {
                return Err(SimError::TokenDim { expected: d, got: row.len() });
            }
        }
        let t = state.len;
        if t >= plan.n() {
            return Err(SimError::DecodeCapacity { n: plan.n() });
        }
        if compute && t < plan.min_step() {
            return Err(SimError::DecodeNotPrimed { position: t, min_step: plan.min_step() });
        }

        // Ingest: quantization element-identical to the prefill load
        // (scale folded into Q). From here on the token is part of the
        // history — a downstream failure leaves the state inconsistent
        // (appended K/V, advanced position, possibly half-run global
        // duties), so it poisons the session until a reset.
        state.q_step.clear();
        state.q_step.extend(q_t.iter().map(|&x| Fix8x4::from_f32(x * scale)));
        state.kq.extend(k_t.iter().map(|&x| Fix8x4::from_f32(x)));
        state.vq.extend(v_t.iter().map(|&x| Fix8x4::from_f32(x)));
        if let Ok(gi) = plan.globals.binary_search(&(t as u32)) {
            state.global_q[gi] = state.q_step.clone();
        }
        state.len += 1;

        let result = self.run_token(plan, state, scratch, compute, t);
        if result.is_err() {
            state.poisoned = true;
        }
        result
    }

    /// The fallible tail of [`advance`](Self::advance), run after the
    /// token has been ingested into the history.
    fn run_token(
        &self,
        plan: &DecodePlan,
        state: &mut DecodeState,
        scratch: &mut ExecScratch,
        compute: bool,
        t: usize,
    ) -> Result<Option<StepOutput>, SimError> {
        let d = state.d;
        // Per-op buffers must match this session's dimension (the scratch
        // may have served other shapes).
        scratch.op.prepare(d, plan.max_row_keys());

        let (exp, recip) = self.shared_tables();
        let mut sat = MacSaturation::default();

        // The step's own row, in prefill merge order.
        let step = if compute {
            state.acc.weight_q16 = 0;
            if state.acc.out_q19.len() == d {
                state.acc.out_q19.fill(0);
            } else {
                state.acc.out_q19.clear();
                state.acc.out_q19.resize(d, 0);
            }
            let DecodeState { kq, vq, q_step, acc, .. } = &mut *state;
            run_decode_ops(
                exp,
                recip,
                plan,
                plan.step_ops(t),
                q_step,
                kq,
                vq,
                d,
                scratch,
                acc,
                &mut sat,
            )?;
            Some((
                acc.out_q19.iter().map(|&o| Fix16x8::from_q19_acc(o)).collect::<Vec<_>>(),
                acc.weight_q16,
            ))
        } else {
            None
        };

        // Advance the running global-duty partials: run every pending op
        // whose query row and keys are now all in the history. Gating only
        // delays ops — never reorders them — so a finished session has
        // merged exactly the prefill's op sequence.
        for (gi, program) in plan.global_rows.iter().enumerate() {
            if (program.token as usize) >= state.len {
                continue; // the token's own query has not arrived yet
            }
            let ops = &plan.ops[program.start as usize..program.end as usize];
            loop {
                let cursor = state.global_cursor[gi];
                if cursor >= ops.len() || program.max_keys[cursor] as usize > t {
                    break;
                }
                let DecodeState { kq, vq, global_q, global_acc, .. } = &mut *state;
                run_decode_ops(
                    exp,
                    recip,
                    plan,
                    &ops[cursor..=cursor],
                    &global_q[gi],
                    kq,
                    vq,
                    d,
                    scratch,
                    &mut global_acc[gi],
                    &mut sat,
                )?;
                state.global_cursor[gi] = cursor + 1;
            }
        }

        state.sat.merge(sat);
        Ok(step.map(|(raw, weight_q16)| StepOutput {
            position: t,
            output: raw.iter().map(|&r| Fix16x8::to_f32(r)).collect(),
            raw,
            weight_q16,
            saturation_events: sat.events,
        }))
    }
}

/// Stages 1–5 for a slice of decode ops, merged into `acc` in op order —
/// literally the prefill's per-op executor ([`run_op`]), fed K/V from the
/// session arenas instead of a full-sequence load, so decode-vs-prefill
/// bit-identity holds by construction (one shared kernel body).
#[allow(clippy::too_many_arguments)]
fn run_decode_ops(
    exp: &ExpLut,
    recip: &RecipUnit,
    plan: &DecodePlan,
    ops: &[LoweredOp],
    q_row: &[Fix8x4],
    kq: &[Fix8x4],
    vq: &[Fix8x4],
    d: usize,
    scratch: &mut ExecScratch,
    acc: &mut PartialRow,
    sat: &mut MacSaturation,
) -> Result<(), SimError> {
    for op in ops {
        run_op(exp, recip, op.kind, plan.op_keys(op), q_row, kq, vq, d, &mut scratch.op, acc, sat)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AcceleratorConfig;
    use salo_kernels::Qkv;
    use salo_patterns::{HybridPattern, Window};
    use salo_scheduler::HardwareMeta;

    fn accel(rows: usize, cols: usize) -> SpatialAccelerator {
        let config = AcceleratorConfig {
            hw: HardwareMeta::new(rows, cols, 1, 1).unwrap(),
            ..Default::default()
        };
        SpatialAccelerator::new(config)
    }

    fn compile(pattern: &HybridPattern, sim: &SpatialAccelerator) -> (ExecutionPlan, DecodePlan) {
        let plan = ExecutionPlan::build(pattern, sim.config().hw).unwrap();
        let lowered = LoweredPlan::lower(&plan);
        let decode = DecodePlan::lower(&plan, &lowered).unwrap();
        (plan, decode)
    }

    /// Drives a complete session over `qkv`, comparing every decoded row
    /// against the prefill output, and returns the session state.
    fn decode_all(
        sim: &SpatialAccelerator,
        pattern: &HybridPattern,
        qkv: &Qkv,
        d: usize,
    ) -> DecodeState {
        let (plan, decode) = compile(pattern, sim);
        let lowered = LoweredPlan::lower(&plan);
        let scale = SpatialAccelerator::default_scale(d);
        let prefill = sim
            .execute_lowered(&lowered, &qkv.q, &qkv.k, &qkv.v, scale, &mut ExecScratch::new())
            .unwrap();

        let mut state = DecodeState::new(&decode, d);
        let mut scratch = ExecScratch::new();
        for t in 0..pattern.n() {
            let (q, k, v) = (qkv.q.row(t), qkv.k.row(t), qkv.v.row(t));
            if t < decode.min_step() {
                sim.prime_token(&decode, &mut state, q, k, v, scale, &mut scratch).unwrap();
                continue;
            }
            let step = sim.execute_step(&decode, &mut state, q, k, v, scale, &mut scratch).unwrap();
            assert_eq!(step.position, t);
            let prefill_row: Vec<_> = (0..d).map(|c| prefill.raw.get(t, c)).collect();
            assert_eq!(step.raw, prefill_row, "row {t} raw outputs");
            assert_eq!(step.weight_q16, prefill.weights_q16[t], "row {t} weight");
        }
        // Global rows have fully caught up and match the prefill bit for
        // bit.
        assert_eq!(state.pending_global_ops(&decode), 0);
        for (gi, &g) in decode.globals().iter().enumerate() {
            let (raw, weight) = state.global_row_output(gi);
            let prefill_row: Vec<_> = (0..d).map(|c| prefill.raw.get(g as usize, c)).collect();
            assert_eq!(raw, prefill_row, "global row {g}");
            assert_eq!(weight, prefill.weights_q16[g as usize]);
        }
        assert_eq!(state.saturation_events(), prefill.report.saturation_events);
        state
    }

    #[test]
    fn causal_window_with_sink_decodes_bit_identically() {
        let pattern = HybridPattern::builder(40)
            .window(Window::symmetric(9).unwrap())
            .global_token(0)
            .build()
            .unwrap()
            .decode_view()
            .unwrap()
            .causal_pattern()
            .clone();
        let sim = accel(8, 8);
        let qkv = Qkv::random(40, 8, 7);
        decode_all(&sim, &pattern, &qkv, 8);
    }

    #[test]
    fn dilated_pattern_decodes_bit_identically() {
        let pattern = HybridPattern::builder(36)
            .window(Window::dilated(-9, 9, 3).unwrap())
            .window(Window::causal(4).unwrap())
            .global_token(0)
            .global_token(1)
            .build()
            .unwrap()
            .decode_view()
            .unwrap()
            .causal_pattern()
            .clone();
        let sim = accel(4, 4);
        let qkv = Qkv::random(36, 4, 23);
        decode_all(&sim, &pattern, &qkv, 4);
    }

    #[test]
    fn windowless_global_only_pattern_decodes() {
        let pattern = HybridPattern::builder(20).global_token(0).build().unwrap();
        let sim = accel(4, 4);
        let qkv = Qkv::random(20, 4, 5);
        decode_all(&sim, &pattern, &qkv, 4);
    }

    #[test]
    fn anticausal_plan_rejected() {
        let pattern =
            HybridPattern::builder(24).window(Window::symmetric(7).unwrap()).build().unwrap();
        let sim = accel(8, 8);
        let plan = ExecutionPlan::build(&pattern, sim.config().hw).unwrap();
        let lowered = LoweredPlan::lower(&plan);
        assert!(matches!(DecodePlan::lower(&plan, &lowered), Err(SimError::AnticausalPlan { .. })));
    }

    #[test]
    fn step_guards_capacity_priming_and_dimensions() {
        let pattern = HybridPattern::builder(8)
            .window(Window::causal(3).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let sim = accel(4, 4);
        let (_, decode) = compile(&pattern, &sim);
        assert_eq!(decode.min_step(), 1);
        let mut state = DecodeState::new(&decode, 4);
        let mut scratch = ExecScratch::new();
        let row = [0.5f32; 4];

        // Stepping before the prompt covers the global token fails.
        assert!(matches!(
            sim.execute_step(&decode, &mut state, &row, &row, &row, 0.5, &mut scratch),
            Err(SimError::DecodeNotPrimed { position: 0, min_step: 1 })
        ));
        // Wrong token dimension fails without mutating the state.
        let short = [0.5f32; 3];
        assert!(matches!(
            sim.prime_token(&decode, &mut state, &short, &row, &row, 0.5, &mut scratch),
            Err(SimError::TokenDim { expected: 4, got: 3 })
        ));
        assert_eq!(state.position(), 0);

        sim.prime_token(&decode, &mut state, &row, &row, &row, 0.5, &mut scratch).unwrap();
        for _ in 1..8 {
            sim.execute_step(&decode, &mut state, &row, &row, &row, 0.5, &mut scratch).unwrap();
        }
        // Capacity exhausted.
        assert!(matches!(
            sim.execute_step(&decode, &mut state, &row, &row, &row, 0.5, &mut scratch),
            Err(SimError::DecodeCapacity { n: 8 })
        ));

        // A state from another plan is refused.
        let other = HybridPattern::builder(12).window(Window::causal(3).unwrap()).build().unwrap();
        let (_, other_decode) = compile(&other, &sim);
        assert!(matches!(
            sim.execute_step(&other_decode, &mut state, &row, &row, &row, 0.5, &mut scratch),
            Err(SimError::StaleDecodeState { state_n: 8, plan_n: 12 })
        ));

        // Even with equal capacity AND equal global count, a different
        // plan (global at another position, different window) is refused
        // — the guard compares the program fingerprint, not just shapes.
        let same_shape = HybridPattern::builder(8)
            .window(Window::causal(2).unwrap())
            .global_token(3)
            .build()
            .unwrap();
        let (_, same_shape_decode) = compile(&same_shape, &sim);
        assert_ne!(decode.fingerprint(), same_shape_decode.fingerprint());
        let mut state = DecodeState::new(&decode, 4);
        sim.prime_token(&decode, &mut state, &row, &row, &row, 0.5, &mut scratch).unwrap();
        assert!(matches!(
            sim.execute_step(&same_shape_decode, &mut state, &row, &row, &row, 0.5, &mut scratch),
            Err(SimError::StaleDecodeState { state_n: 8, plan_n: 8 })
        ));
    }

    #[test]
    fn poisoned_state_rejects_advances_until_reset() {
        // A step that fails after its token entered the history leaves
        // the state inconsistent (appended K/V, advanced position):
        // every further advance must be refused, validation errors must
        // NOT poison (they precede the mutation), and reset() recovers.
        let pattern = HybridPattern::builder(8)
            .window(Window::causal(3).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let sim = accel(4, 4);
        let (_, decode) = compile(&pattern, &sim);
        let mut state = DecodeState::new(&decode, 4);
        let mut scratch = ExecScratch::new();
        let row = [0.5f32; 4];

        // Validation failures leave the state clean and usable.
        let short = [0.5f32; 3];
        assert!(sim
            .prime_token(&decode, &mut state, &short, &row, &row, 0.5, &mut scratch)
            .is_err());
        assert!(!state.is_poisoned());
        sim.prime_token(&decode, &mut state, &row, &row, &row, 0.5, &mut scratch).unwrap();
        sim.execute_step(&decode, &mut state, &row, &row, &row, 0.5, &mut scratch).unwrap();

        // A mid-step failure poisons: both step and prime are refused.
        state.poisoned = true;
        let position = state.position();
        assert!(matches!(
            sim.execute_step(&decode, &mut state, &row, &row, &row, 0.5, &mut scratch),
            Err(SimError::PoisonedDecodeState)
        ));
        assert!(matches!(
            sim.prime_token(&decode, &mut state, &row, &row, &row, 0.5, &mut scratch),
            Err(SimError::PoisonedDecodeState)
        ));
        assert_eq!(state.position(), position, "refused advances do not move the session");

        // Reset rebinds the state to a clean, decodable session.
        state.reset(&decode, 4);
        assert!(!state.is_poisoned());
        sim.prime_token(&decode, &mut state, &row, &row, &row, 0.5, &mut scratch).unwrap();
        sim.execute_step(&decode, &mut state, &row, &row, &row, 0.5, &mut scratch).unwrap();
    }

    #[test]
    fn reset_state_is_bit_transparent_across_shapes() {
        let sim = accel(4, 4);
        let a = HybridPattern::builder(24)
            .window(Window::causal(5).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let b = HybridPattern::builder(16).window(Window::causal(9).unwrap()).build().unwrap();
        let (_, da) = compile(&a, &sim);
        let (_, db) = compile(&b, &sim);

        // Run a on a fresh state, then b and a again on a reused one.
        let qkv_a = Qkv::random(24, 4, 1);
        let qkv_b = Qkv::random(16, 6, 2);
        let fresh = decode_all(&sim, &a, &qkv_a, 4);

        let mut state = DecodeState::new(&db, 6);
        let mut scratch = ExecScratch::new();
        let scale = SpatialAccelerator::default_scale(6);
        for t in 0..16 {
            sim.execute_step(
                &db,
                &mut state,
                qkv_b.q.row(t),
                qkv_b.k.row(t),
                qkv_b.v.row(t),
                scale,
                &mut scratch,
            )
            .unwrap();
        }
        state.reset(&da, 4);
        let scale = SpatialAccelerator::default_scale(4);
        sim.prime_token(
            &da,
            &mut state,
            qkv_a.q.row(0),
            qkv_a.k.row(0),
            qkv_a.v.row(0),
            scale,
            &mut scratch,
        )
        .unwrap();
        for t in 1..24 {
            sim.execute_step(
                &da,
                &mut state,
                qkv_a.q.row(t),
                qkv_a.k.row(t),
                qkv_a.v.row(t),
                scale,
                &mut scratch,
            )
            .unwrap();
        }
        let (raw_reused, w_reused) = state.global_row_output(0);
        let (raw_fresh, w_fresh) = fresh.global_row_output(0);
        assert_eq!(raw_reused, raw_fresh, "reused state diverged from fresh");
        assert_eq!(w_reused, w_fresh);
        assert_eq!(state.saturation_events(), fresh.saturation_events());
    }
}
