//! Streaming decode: per-step hybrid-sparse attention against persistent
//! quantized K/V state, held in fixed-size pages.
//!
//! Autoregressive generation produces one query position per step, each
//! attending a growing history through the same window+global structure
//! the prefill datapath executes in one shot. Re-lowering (or worse,
//! re-executing) the full plan per token would be quadratic in the
//! generation length; instead this module compiles the prefill's
//! [`LoweredPlan`] **once** into a step-indexed program and executes one
//! position per call against paged K/V state that persists across the
//! whole generation:
//!
//! * [`DecodePlan::lower`] re-buckets the lowered op list by destination
//!   row, preserving the prefill's per-row op order — window-row softmax
//!   parts first-chunk-to-last, global-column cells interleaved exactly
//!   where the prefill merges them. Executing row `t`'s bucket therefore
//!   performs the *same fixed-point operations in the same order* as the
//!   full prefill does for that row, which is what makes decode
//!   bit-identical to the causal-prefill oracle (outputs, `weights_q16`
//!   and saturation counts — asserted by `tests/decode.rs`). Lowering
//!   also precomputes the **live horizon** of every step — the smallest
//!   non-global key any current-or-future op can still read — which is
//!   what drives page reclamation.
//! * [`KvPagePool`] owns the physical pages: fixed-size K/V blocks of
//!   `page_rows` token rows each, recycled through a freelist and shared
//!   by every session of one owner (a serving worker, a bench harness).
//!   The pool can be capacity-bounded; exhaustion fails the requesting
//!   step *cleanly* (no poisoning — the token was not ingested).
//! * [`DecodeState`] owns the session: a page table mapping sequence
//!   positions to pool pages (position `t` lives at slot `t % page_rows`
//!   of page `t / page_rows`), the stored query rows of global tokens,
//!   and the *running global-duty partials*. After every advance the
//!   session reclaims pages no future step can reference — under
//!   window+dilation patterns resident memory is O(active window), not
//!   O(history). Pages holding global tokens are pinned for the session's
//!   lifetime (global K/V rows are re-read by every future step).
//! * [`SpatialAccelerator::execute_step`] runs one token: quantize and
//!   append K/V into the current page, execute the step's ops through the
//!   stage 1–5 fixed-point kernels (reusing the caller's [`ExecScratch`]
//!   buffers), advance the global-duty partials, reclaim dead pages, and
//!   return the new position's output row.
//!   [`SpatialAccelerator::execute_steps`] is the fused multi-session
//!   form: one step from each of many ready sessions sharing a plan,
//!   executed back to back over one scratch — bit-identical to stepping
//!   the sessions individually.
//!
//! The plan must come from a **causally clipped** pattern
//! ([`HybridPattern::causal`](salo_patterns::HybridPattern::causal) /
//! [`decode_view`](salo_patterns::HybridPattern::decode_view)): lowering
//! verifies that no window op reaches a future key and rejects anticausal
//! plans.

use salo_fixed::{ExpLut, Fix16x8, Fix8x4, MacSaturation, PartialRow, RecipUnit};
use salo_scheduler::ExecutionPlan;

use crate::exec::{run_op, ExecScratch, KvSource};
use crate::{LoweredOp, LoweredOpKind, LoweredPlan, SimError, SpatialAccelerator};

/// Default rows per K/V page when the owner does not configure one.
/// Small enough that a narrow active window (w + globals) stays a handful
/// of pages; large enough that page-table overhead is noise.
pub const DEFAULT_PAGE_ROWS: usize = 16;

/// One global token's incremental row program: the prefill's ops for that
/// destination, in prefill order, plus the gating key that tells the
/// session when each op's inputs exist.
#[derive(Debug, Clone, PartialEq)]
struct GlobalRowProgram {
    /// The global token (sequence position).
    token: u32,
    /// Op range in the owning plan's op list.
    start: u32,
    end: u32,
    /// Per op (parallel to the range): the largest key it reads. The op
    /// becomes runnable once the history covers both this key and the
    /// token's own query row.
    max_keys: Vec<u32>,
    /// Suffix minima over the ops' smallest **non-global** keys
    /// (`len = ops + 1`, `u32::MAX` terminated): `pending_suffix_min[c]`
    /// is the earliest history row any op from cursor `c` onward still
    /// needs. Pending global-row duties hold pages live through this.
    pending_suffix_min: Vec<u32>,
}

/// A [`LoweredPlan`] compiled for token-by-token execution.
///
/// Produced once per compiled plan and shared across every decode session
/// of that pattern/shape (it is immutable; serving pins one behind an
/// `Arc` per session).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodePlan {
    n: usize,
    min_step: usize,
    globals: Vec<u32>,
    /// Step ops, contiguous per destination row, prefill order within
    /// each row.
    ops: Vec<LoweredOp>,
    /// Key arena the ops slice into (rebuilt compactly during lowering).
    keys: Vec<u32>,
    /// Per sequence position: op range into `ops` (empty for global rows,
    /// whose work lives in `global_rows`).
    step_ranges: Vec<(u32, u32)>,
    global_rows: Vec<GlobalRowProgram>,
    max_row_keys: usize,
    /// Suffix minima over the steps' smallest non-global keys
    /// (`len = n + 1`, `u32::MAX` terminated): `step_suffix_min[t]` is
    /// the earliest history row any step `>= t` reads. Together with the
    /// global rows' pending minima this is the exact reclamation horizon.
    step_suffix_min: Vec<u32>,
    /// Structural fingerprint of the whole program — the stale-state
    /// guard that ties a [`DecodeState`] to the plan it was reset for.
    fingerprint: u64,
}

impl DecodePlan {
    /// Compiles a lowered plan into its step-indexed decode program.
    ///
    /// `plan` supplies the global-token set; `lowered` must be the
    /// lowering of that same plan (as stored side by side in
    /// `CompiledPlan`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AnticausalPlan`] if any window op attends a key
    /// after its query — the pattern was not causally clipped and cannot
    /// be decoded incrementally.
    pub fn lower(plan: &ExecutionPlan, lowered: &LoweredPlan) -> Result<Self, SimError> {
        let n = lowered.n();
        let globals: Vec<u32> = plan.globals().iter().map(|&g| g as u32).collect();
        let min_step = plan.globals().iter().max().map_or(0, |&g| g + 1);

        // Bucket the lowered ops by destination, preserving prefill order
        // within each destination — the order the prefill's weighted-sum
        // module merges that row's parts in.
        let mut step_buckets: Vec<Vec<LoweredOp>> = vec![Vec::new(); n];
        let mut global_buckets: Vec<Vec<LoweredOp>> = vec![Vec::new(); globals.len()];
        for op in lowered.ops() {
            let dest = op.dest as usize;
            match globals.binary_search(&op.dest) {
                Ok(gi) => global_buckets[gi].push(*op),
                Err(_) => {
                    if op.kind == LoweredOpKind::Row {
                        // Window ops must be causal; global-column cells
                        // (SingleKey) are gated by `min_step` instead.
                        if let Some(&k) = lowered.op_keys(op).iter().max() {
                            if k as usize > dest {
                                return Err(SimError::AnticausalPlan { dest, key: k as usize });
                            }
                        }
                    }
                    step_buckets[dest].push(*op);
                }
            }
        }

        // Flatten into one op list with a compact key arena.
        let mut ops = Vec::with_capacity(lowered.ops().len());
        let mut keys = Vec::with_capacity(lowered.keys().len());
        let push_ops = |bucket: &[LoweredOp], keys: &mut Vec<u32>, ops: &mut Vec<LoweredOp>| {
            let start = ops.len() as u32;
            for op in bucket {
                let key_start = keys.len() as u32;
                keys.extend_from_slice(lowered.op_keys(op));
                ops.push(LoweredOp { key_start, ..*op });
            }
            (start, ops.len() as u32)
        };
        let mut step_ranges = Vec::with_capacity(n);
        for bucket in &step_buckets {
            step_ranges.push(push_ops(bucket, &mut keys, &mut ops));
        }
        let mut global_rows = Vec::with_capacity(globals.len());
        for (gi, bucket) in global_buckets.iter().enumerate() {
            let (start, end) = push_ops(bucket, &mut keys, &mut ops);
            let max_keys = bucket
                .iter()
                .map(|op| lowered.op_keys(op).iter().copied().max().unwrap_or(0))
                .collect();
            global_rows.push(GlobalRowProgram {
                token: globals[gi],
                start,
                end,
                max_keys,
                pending_suffix_min: Vec::new(),
            });
        }

        // Precompute the reclamation horizon: suffix minima over the
        // smallest *non-global* key each step (and each pending
        // global-row op) reads. Global keys are excluded — their pages
        // are pinned outright, so they must not drag the horizon to the
        // sequence start.
        let min_nonglobal_key = |op: &LoweredOp, keys: &[u32]| {
            keys[op.key_start as usize..(op.key_start + op.key_len) as usize]
                .iter()
                .copied()
                .filter(|k| globals.binary_search(k).is_err())
                .min()
                .unwrap_or(u32::MAX)
        };
        let mut step_suffix_min = vec![u32::MAX; n + 1];
        for t in (0..n).rev() {
            let (s, e) = step_ranges[t];
            let own = ops[s as usize..e as usize]
                .iter()
                .map(|op| min_nonglobal_key(op, &keys))
                .min()
                .unwrap_or(u32::MAX);
            step_suffix_min[t] = own.min(step_suffix_min[t + 1]);
        }
        for program in &mut global_rows {
            let count = (program.end - program.start) as usize;
            let mut suffix = vec![u32::MAX; count + 1];
            for i in (0..count).rev() {
                let op = &ops[program.start as usize + i];
                suffix[i] = min_nonglobal_key(op, &keys).min(suffix[i + 1]);
            }
            program.pending_suffix_min = suffix;
        }

        // Hash the complete program: two plans that differ anywhere in
        // their ops or key arenas fingerprint apart, so a state reset for
        // one cannot silently execute against the other (same capacity
        // and global count included). Paid once per lowering.
        let mut h = salo_patterns::StableHasher::new();
        h.write_usize(n);
        h.write_usize(min_step);
        h.write_usize(globals.len());
        for &g in &globals {
            h.write_usize(g as usize);
        }
        h.write_usize(ops.len());
        for op in &ops {
            h.write_usize(match op.kind {
                LoweredOpKind::Row => 0,
                LoweredOpKind::SingleKey => 1,
            });
            h.write_usize(op.dest as usize);
            h.write_usize(op.key_len as usize);
        }
        h.write_usize(keys.len());
        for &k in &keys {
            h.write_usize(k as usize);
        }
        let fingerprint = h.finish();

        Ok(Self {
            n,
            min_step,
            globals,
            ops,
            keys,
            step_ranges,
            global_rows,
            max_row_keys: lowered.max_row_keys(),
            step_suffix_min,
            fingerprint,
        })
    }

    /// Structural fingerprint of the step program (stable across runs).
    /// [`DecodeState`]s record it at reset; executing a state against a
    /// plan with a different fingerprint is refused as stale.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Sequence capacity: the maximum number of positions a session over
    /// this plan can hold (prompt + generated).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// First decodable position: the one after the last global token.
    /// Positions before it form the prompt and must be primed.
    #[must_use]
    pub fn min_step(&self) -> usize {
        self.min_step
    }

    /// The global tokens, ascending.
    #[must_use]
    pub fn globals(&self) -> &[u32] {
        &self.globals
    }

    /// The ops computing position `t`'s output row, in prefill merge
    /// order. Empty for global positions (their rows accumulate via the
    /// running global-duty partials) and for rows with no active keys.
    #[must_use]
    pub fn step_ops(&self, t: usize) -> &[LoweredOp] {
        let (start, end) = self.step_ranges[t];
        &self.ops[start as usize..end as usize]
    }

    /// Key list of one op.
    #[must_use]
    pub fn op_keys(&self, op: &LoweredOp) -> &[u32] {
        &self.keys[op.key_start as usize..(op.key_start + op.key_len) as usize]
    }

    /// The longest key list of any op — scratch high-water mark.
    #[must_use]
    pub fn max_row_keys(&self) -> usize {
        self.max_row_keys
    }

    /// Total keys read over a full generation (work proxy for benches).
    #[must_use]
    pub fn total_step_keys(&self) -> u64 {
        self.ops.iter().map(|op| u64::from(op.key_len)).sum()
    }

    /// The earliest non-global history row any step at position `>= len`
    /// (or any still-pending global-row op, per `global_cursor`) can
    /// read. Rows strictly below the horizon are only reachable through
    /// global pinning, so their pages are reclaimable.
    fn live_horizon(&self, len: usize, global_cursor: &[usize]) -> usize {
        let mut h = self.step_suffix_min[len.min(self.n)];
        for (program, &cursor) in self.global_rows.iter().zip(global_cursor) {
            h = h.min(program.pending_suffix_min[cursor]);
        }
        h as usize
    }

    /// Whether any global token lies in the row range `[start, end)`.
    fn pins_range(&self, start: u32, end: u32) -> bool {
        let i = self.globals.partition_point(|&g| g < start);
        self.globals.get(i).is_some_and(|&g| g < end)
    }
}

/// One fixed-size block of quantized K/V rows — `page_rows` token rows of
/// `d` elements each, for both K and V.
///
/// Pages are owned by sessions (through [`DecodeState`]'s page table)
/// while live and by the [`KvPagePool`]'s freelist while free; their
/// buffers keep their capacity across recycling, so steady-state
/// allocation traffic is zero.
#[derive(Debug, Clone, Default)]
pub struct KvPage {
    k: Vec<Fix8x4>,
    v: Vec<Fix8x4>,
}

/// Counters of one [`KvPagePool`], for gauges and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvPoolStats {
    /// Rows per page.
    pub page_rows: usize,
    /// Pages currently held by sessions.
    pub in_use: usize,
    /// Peak of `in_use` over the pool's lifetime.
    pub high_water: usize,
    /// Pages returned by the horizon reclaimer (resets and closes do not
    /// count — only pages proven dead mid-session).
    pub reclaimed: u64,
    /// Allocation attempts refused at capacity.
    pub exhausted: u64,
}

/// The shared physical-page allocator of one decode owner (a serving
/// worker's engine, a bench harness): a freelist of recycled [`KvPage`]s
/// plus occupancy accounting, optionally capacity-bounded.
///
/// Not thread-safe by design — each owner (one worker thread) has its
/// own pool, exactly like `ExecScratch`, so the hot path takes no locks.
#[derive(Debug, Clone)]
pub struct KvPagePool {
    page_rows: usize,
    capacity: usize,
    free: Vec<KvPage>,
    in_use: usize,
    high_water: usize,
    reclaimed: u64,
    exhausted: u64,
}

impl Default for KvPagePool {
    fn default() -> Self {
        Self::new(DEFAULT_PAGE_ROWS)
    }
}

impl KvPagePool {
    /// An unbounded pool handing out pages of `page_rows` rows.
    #[must_use]
    pub fn new(page_rows: usize) -> Self {
        Self::bounded(page_rows, usize::MAX)
    }

    /// A pool that refuses allocations once `capacity` pages are in use.
    #[must_use]
    pub fn bounded(page_rows: usize, capacity: usize) -> Self {
        Self {
            page_rows: page_rows.max(1),
            capacity,
            free: Vec::new(),
            in_use: 0,
            high_water: 0,
            reclaimed: 0,
            exhausted: 0,
        }
    }

    /// Rows per page.
    #[must_use]
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// Pages currently held by sessions.
    #[must_use]
    pub fn pages_in_use(&self) -> usize {
        self.in_use
    }

    /// Snapshot of the pool's counters.
    #[must_use]
    pub fn stats(&self) -> KvPoolStats {
        KvPoolStats {
            page_rows: self.page_rows,
            in_use: self.in_use,
            high_water: self.high_water,
            reclaimed: self.reclaimed,
            exhausted: self.exhausted,
        }
    }

    /// Hands out one page sized for head dimension `d`, recycling a freed
    /// page when one is available.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PagePoolExhausted`] when `capacity` pages are
    /// already in use.
    pub fn allocate(&mut self, d: usize) -> Result<KvPage, SimError> {
        if self.in_use >= self.capacity {
            self.exhausted += 1;
            return Err(SimError::PagePoolExhausted {
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        let mut page = self.free.pop().unwrap_or_default();
        let cells = self.page_rows * d;
        page.k.clear();
        page.k.resize(cells, Fix8x4::ZERO);
        page.v.clear();
        page.v.resize(cells, Fix8x4::ZERO);
        self.in_use += 1;
        self.high_water = self.high_water.max(self.in_use);
        Ok(page)
    }

    /// Returns a page to the freelist (session reset, close, teardown).
    pub fn release(&mut self, page: KvPage) {
        self.in_use = self.in_use.saturating_sub(1);
        self.free.push(page);
    }

    /// [`release`](Self::release), counted as a mid-session horizon
    /// reclaim.
    fn reclaim(&mut self, page: KvPage) {
        self.reclaimed += 1;
        self.release(page);
    }
}

/// Page-translated K/V access — the decode-side
/// [`KvSource`](crate::exec::KvSource): row `j` lives at slot
/// `j % page_rows` of page `j / page_rows`.
struct PagedKv<'a> {
    pages: &'a [Option<KvPage>],
    page_rows: usize,
}

impl<'a> PagedKv<'a> {
    fn new(pages: &'a [Option<KvPage>], page_rows: usize) -> Self {
        Self { pages, page_rows }
    }

    #[inline]
    fn page(&self, j: usize) -> (&'a KvPage, usize) {
        let page = self.pages[j / self.page_rows]
            .as_ref()
            .expect("plan references a reclaimed K/V row: horizon invariant violated");
        (page, j % self.page_rows)
    }
}

impl KvSource for PagedKv<'_> {
    #[inline]
    fn k_row(&self, j: usize, d: usize) -> &[Fix8x4] {
        let (page, slot) = self.page(j);
        &page.k[slot * d..(slot + 1) * d]
    }

    #[inline]
    fn v_row(&self, j: usize, d: usize) -> &[Fix8x4] {
        let (page, slot) = self.page(j);
        &page.v[slot * d..(slot + 1) * d]
    }
}

/// The persistent state of one decode session (one head).
///
/// Owns the session's page table (quantized K/V, one appended row per
/// token, pages drawn from a shared [`KvPagePool`]), the stored query
/// rows of global tokens, and the running global-duty partials. Reusable
/// across sessions of different shapes via [`reset`](Self::reset) —
/// reuse is bit-transparent, like `ExecScratch`. Every teardown path must
/// hand the pages back ([`reset`](Self::reset) or
/// [`release`](Self::release)); dropping the state instead merely leaks
/// them from the pool's accounting.
#[derive(Debug, Clone)]
pub struct DecodeState {
    /// Head dimension.
    d: usize,
    /// Capacity this state was initialized for (error reporting).
    n: usize,
    /// Fingerprint of the plan this state was reset for (stale-state
    /// guard — catches even same-capacity, same-global-count plans).
    plan_fp: u64,
    /// Tokens ingested so far; the next token lands at this position.
    len: usize,
    /// Rows per page, latched from the pool at the session's first
    /// append (the whole session must use one pool).
    page_rows: usize,
    /// Page table: position `t` lives in `pages[t / page_rows]`; `None`
    /// marks a reclaimed page.
    pages: Vec<Option<KvPage>>,
    /// Live entries in `pages`.
    resident: usize,
    /// Pages below this index have been through the reclaimer (freed or
    /// pinned); the horizon is monotone, so they are never revisited.
    reclaim_floor: usize,
    /// The current token's quantized, scale-folded query row.
    q_step: Vec<Fix8x4>,
    /// Stored query rows of global tokens (filled when each is ingested).
    global_q: Vec<Vec<Fix8x4>>,
    /// Running global-duty partials: one accumulator per global token.
    global_acc: Vec<PartialRow>,
    /// Next pending op (index into the token's program) per global row.
    global_cursor: Vec<usize>,
    /// The current step's output accumulator.
    acc: PartialRow,
    /// Cumulative saturation events over the session.
    sat: MacSaturation,
    /// Set when a step failed after the token was already appended to the
    /// history: the state is inconsistent (partial K/V, off-by-one
    /// position) and every further advance is rejected until a reset.
    poisoned: bool,
}

impl DecodeState {
    /// Creates an empty session state for `plan` with head dimension `d`.
    /// Pages are drawn lazily from the pool passed to
    /// [`prime_token`](SpatialAccelerator::prime_token) /
    /// [`execute_step`](SpatialAccelerator::execute_step).
    #[must_use]
    pub fn new(plan: &DecodePlan, d: usize) -> Self {
        let mut state = Self {
            d: 0,
            n: 0,
            plan_fp: 0,
            len: 0,
            page_rows: DEFAULT_PAGE_ROWS,
            pages: Vec::new(),
            resident: 0,
            reclaim_floor: 0,
            q_step: Vec::new(),
            global_q: Vec::new(),
            global_acc: Vec::new(),
            global_cursor: Vec::new(),
            acc: PartialRow::empty(0),
            sat: MacSaturation::default(),
            poisoned: false,
        };
        state.rebind(plan, d);
        state
    }

    /// Rebinds the state to a (possibly different) plan and head
    /// dimension, returning every held page to `pool` first — the
    /// worker-pool form of session switching, and the recovery path from
    /// poisoning. A reset state is indistinguishable from a fresh one,
    /// and its pages are immediately reusable by other sessions on the
    /// same pool.
    pub fn reset(&mut self, plan: &DecodePlan, d: usize, pool: &mut KvPagePool) {
        self.release(pool);
        self.rebind(plan, d);
    }

    /// Returns every held page to `pool` and empties the page table — the
    /// teardown half of [`reset`](Self::reset), for session close paths
    /// that drop the state afterwards. The state must not execute again
    /// until reset.
    pub fn release(&mut self, pool: &mut KvPagePool) {
        for page in self.pages.drain(..).flatten() {
            pool.release(page);
        }
        self.resident = 0;
        self.reclaim_floor = 0;
    }

    /// The non-page half of a reset.
    fn rebind(&mut self, plan: &DecodePlan, d: usize) {
        debug_assert!(self.pages.is_empty(), "rebind without releasing pages");
        self.d = d;
        self.n = plan.n();
        self.plan_fp = plan.fingerprint();
        self.len = 0;
        self.resident = 0;
        self.reclaim_floor = 0;
        self.q_step.clear();
        self.global_q.clear();
        self.global_q.resize(plan.globals.len(), Vec::new());
        self.global_acc.clear();
        self.global_acc.resize(plan.globals.len(), PartialRow::empty(d));
        self.global_cursor.clear();
        self.global_cursor.resize(plan.globals.len(), 0);
        self.acc = PartialRow::empty(d);
        self.sat = MacSaturation::default();
        self.poisoned = false;
    }

    /// Tokens ingested so far — the position the next token will occupy.
    #[must_use]
    pub fn position(&self) -> usize {
        self.len
    }

    /// Head dimension of the session.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.d
    }

    /// Pages this session currently holds.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// Bytes of quantized K/V this session currently pins (resident
    /// pages × rows per page × 2 arenas × `d` quantized elements).
    #[must_use]
    pub fn resident_kv_bytes(&self) -> u64 {
        (self.resident * self.page_rows * self.d * 2 * std::mem::size_of::<Fix8x4>()) as u64
    }

    /// Cumulative MAC saturation events over the session (prompt, steps
    /// and global-duty advances).
    #[must_use]
    pub fn saturation_events(&self) -> u64 {
        self.sat.events
    }

    /// Whether a failed step has left this state inconsistent. A
    /// poisoned state rejects every advance with
    /// [`SimError::PoisonedDecodeState`] until [`reset`](Self::reset).
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Number of running global-duty partials (= global tokens).
    #[must_use]
    pub fn num_globals(&self) -> usize {
        self.global_acc.len()
    }

    /// The current output of global row `i` (by ascending token order):
    /// the 16-bit row and its softmax weight, as accumulated so far. After
    /// a full generation this equals the causal prefill's row for that
    /// token, bit for bit.
    #[must_use]
    pub fn global_row_output(&self, i: usize) -> (Vec<Fix16x8>, i64) {
        let acc = &self.global_acc[i];
        (acc.out_q19.iter().map(|&o| Fix16x8::from_q19_acc(o)).collect(), acc.weight_q16)
    }

    /// Global-duty ops not yet runnable (waiting for future keys).
    #[must_use]
    pub fn pending_global_ops(&self, plan: &DecodePlan) -> usize {
        plan.global_rows
            .iter()
            .zip(&self.global_cursor)
            .map(|(g, &c)| (g.end - g.start) as usize - c)
            .sum()
    }
}

/// The output of one decode step: position `t`'s attention row in the
/// same formats the prefill reports per row.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutput {
    /// The position this step produced.
    pub position: usize,
    /// Output row in the 16-bit accelerator format.
    pub raw: Vec<Fix16x8>,
    /// The row dequantized to `f32`.
    pub output: Vec<f32>,
    /// The row's softmax weight `W = Σ exp` (Q.16).
    pub weight_q16: i64,
    /// MAC saturation events attributed to this token (its own ops plus
    /// any global-duty ops it unblocked).
    pub saturation_events: u64,
}

/// One session's pending step inside a fused
/// [`execute_steps`](SpatialAccelerator::execute_steps) batch.
pub struct BatchStep<'a> {
    /// The session's persistent state.
    pub state: &'a mut DecodeState,
    /// The new position's query row.
    pub q_t: &'a [f32],
    /// The new position's key row.
    pub k_t: &'a [f32],
    /// The new position's value row.
    pub v_t: &'a [f32],
    /// Attention scale, folded into the query quantization.
    pub scale: f32,
}

impl SpatialAccelerator {
    /// Ingests one prompt token without computing an output row: K/V are
    /// quantized into the session's current page, global query rows are
    /// captured, and any global-duty ops whose inputs are now complete
    /// run. Returns the MAC saturation events the token caused.
    ///
    /// The session's first `DecodePlan::min_step` tokens must arrive this
    /// way (they include every global token); longer prompts are allowed
    /// — their rows simply keep the outputs the prefill computed for
    /// them.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DecodeCapacity`] past the plan's capacity,
    /// [`SimError::TokenDim`] on a row-length mismatch,
    /// [`SimError::StaleDecodeState`] if `state` was initialized for a
    /// different plan, or [`SimError::PagePoolExhausted`] when a new page
    /// is needed and the pool is at capacity (the state stays clean — the
    /// token was not ingested).
    #[allow(clippy::too_many_arguments)] // mirrors execute_lowered's surface
    pub fn prime_token(
        &self,
        plan: &DecodePlan,
        state: &mut DecodeState,
        q_t: &[f32],
        k_t: &[f32],
        v_t: &[f32],
        scale: f32,
        pool: &mut KvPagePool,
        scratch: &mut ExecScratch,
    ) -> Result<u64, SimError> {
        let before = state.sat.events;
        self.advance(plan, state, q_t, k_t, v_t, scale, pool, scratch, false)?;
        Ok(state.sat.events - before)
    }

    /// Executes one decode step: ingests the token at the next position
    /// and returns that position's output row, computed through the exact
    /// prefill datapath (stages 1–5 per op, weighted-sum merges in
    /// prefill order). Bit-identical to the corresponding causal-prefill
    /// row — at every page size.
    ///
    /// # Errors
    ///
    /// As [`prime_token`](Self::prime_token), plus
    /// [`SimError::DecodeNotPrimed`] if the prompt has not covered every
    /// global token yet, and fixed-point errors on numeric degeneracy.
    #[allow(clippy::too_many_arguments)] // mirrors execute_lowered's surface
    pub fn execute_step(
        &self,
        plan: &DecodePlan,
        state: &mut DecodeState,
        q_t: &[f32],
        k_t: &[f32],
        v_t: &[f32],
        scale: f32,
        pool: &mut KvPagePool,
        scratch: &mut ExecScratch,
    ) -> Result<StepOutput, SimError> {
        let _span = salo_trace::Tracer::global().span_with(
            "sim.execute_step",
            "sim",
            state.position() as u64,
        );
        self.advance(plan, state, q_t, k_t, v_t, scale, pool, scratch, true)
            .map(|out| out.expect("compute=true always yields a step output"))
    }

    /// Executes one pending step from each of many sessions sharing one
    /// plan as a single fused pass — the iteration-level batched kernel
    /// of the serving tick. The gathered steps run back to back over one
    /// [`ExecScratch`] and one pool, so per-dispatch overhead is paid
    /// once for the whole batch.
    ///
    /// Results are per entry — the sessions are independent, so one
    /// failing (and poisoning itself) never affects its neighbours — and
    /// every entry is **bit-identical** to calling
    /// [`execute_step`](Self::execute_step) on that session alone: the
    /// fused pass performs the same fixed-point operations in the same
    /// per-session order through the same scratch-transparent kernels.
    pub fn execute_steps(
        &self,
        plan: &DecodePlan,
        batch: &mut [BatchStep<'_>],
        pool: &mut KvPagePool,
        scratch: &mut ExecScratch,
    ) -> Vec<Result<StepOutput, SimError>> {
        let _span =
            salo_trace::Tracer::global().span_with("sim.execute_steps", "sim", batch.len() as u64);
        batch
            .iter_mut()
            .map(|step| {
                self.advance(
                    plan, step.state, step.q_t, step.k_t, step.v_t, step.scale, pool, scratch, true,
                )
                .map(|out| out.expect("compute=true always yields a step output"))
            })
            .collect()
    }

    /// The shared ingest path of [`prime_token`](Self::prime_token) and
    /// [`execute_step`](Self::execute_step).
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &self,
        plan: &DecodePlan,
        state: &mut DecodeState,
        q_t: &[f32],
        k_t: &[f32],
        v_t: &[f32],
        scale: f32,
        pool: &mut KvPagePool,
        scratch: &mut ExecScratch,
        compute: bool,
    ) -> Result<Option<StepOutput>, SimError> {
        if state.poisoned {
            return Err(SimError::PoisonedDecodeState);
        }
        if state.plan_fp != plan.fingerprint() {
            return Err(SimError::StaleDecodeState { state_n: state.n, plan_n: plan.n() });
        }
        let d = state.d;
        for row in [q_t, k_t, v_t] {
            if row.len() != d {
                return Err(SimError::TokenDim { expected: d, got: row.len() });
            }
        }
        let t = state.len;
        if t >= plan.n() {
            return Err(SimError::DecodeCapacity { n: plan.n() });
        }
        if compute && t < plan.min_step() {
            return Err(SimError::DecodeNotPrimed { position: t, min_step: plan.min_step() });
        }
        // Open the token's page before touching the state: an exhausted
        // pool fails *cleanly* (nothing ingested, nothing poisoned), so
        // the step can be retried once other sessions free pages.
        if t == 0 {
            state.page_rows = pool.page_rows();
        }
        debug_assert_eq!(state.page_rows, pool.page_rows(), "session moved between pools");
        if t.is_multiple_of(state.page_rows) {
            debug_assert_eq!(state.pages.len(), t / state.page_rows);
            let page = pool.allocate(d)?;
            state.pages.push(Some(page));
            state.resident += 1;
        }

        // Ingest: quantization element-identical to the prefill load
        // (scale folded into Q). From here on the token is part of the
        // history — a downstream failure leaves the state inconsistent
        // (appended K/V, advanced position, possibly half-run global
        // duties), so it poisons the session until a reset.
        state.q_step.clear();
        state.q_step.extend(q_t.iter().map(|&x| Fix8x4::from_f32(x * scale)));
        let slot = t % state.page_rows;
        let page = state.pages[t / state.page_rows].as_mut().expect("append page is resident");
        for (dst, &x) in page.k[slot * d..(slot + 1) * d].iter_mut().zip(k_t) {
            *dst = Fix8x4::from_f32(x);
        }
        for (dst, &x) in page.v[slot * d..(slot + 1) * d].iter_mut().zip(v_t) {
            *dst = Fix8x4::from_f32(x);
        }
        if let Ok(gi) = plan.globals.binary_search(&(t as u32)) {
            state.global_q[gi] = state.q_step.clone();
        }
        state.len += 1;

        let result = self.run_token(plan, state, scratch, compute, t);
        if result.is_err() {
            state.poisoned = true;
        } else {
            reclaim_dead_pages(plan, state, pool);
        }
        result
    }

    /// The fallible tail of [`advance`](Self::advance), run after the
    /// token has been ingested into the history.
    fn run_token(
        &self,
        plan: &DecodePlan,
        state: &mut DecodeState,
        scratch: &mut ExecScratch,
        compute: bool,
        t: usize,
    ) -> Result<Option<StepOutput>, SimError> {
        let d = state.d;
        // Per-op buffers must match this session's dimension (the scratch
        // may have served other shapes).
        scratch.op.prepare(d, plan.max_row_keys());

        let (exp, recip) = self.shared_tables();
        let mut sat = MacSaturation::default();

        // The step's own row, in prefill merge order.
        let step = if compute {
            state.acc.weight_q16 = 0;
            if state.acc.out_q19.len() == d {
                state.acc.out_q19.fill(0);
            } else {
                state.acc.out_q19.clear();
                state.acc.out_q19.resize(d, 0);
            }
            let DecodeState { pages, page_rows, q_step, acc, .. } = &mut *state;
            let kv = PagedKv::new(pages, *page_rows);
            run_decode_ops(
                exp,
                recip,
                plan,
                plan.step_ops(t),
                q_step,
                &kv,
                d,
                scratch,
                acc,
                &mut sat,
            )?;
            Some((
                acc.out_q19.iter().map(|&o| Fix16x8::from_q19_acc(o)).collect::<Vec<_>>(),
                acc.weight_q16,
            ))
        } else {
            None
        };

        // Advance the running global-duty partials: run every pending op
        // whose query row and keys are now all in the history. Gating only
        // delays ops — never reorders them — so a finished session has
        // merged exactly the prefill's op sequence.
        for (gi, program) in plan.global_rows.iter().enumerate() {
            if (program.token as usize) >= state.len {
                continue; // the token's own query has not arrived yet
            }
            let ops = &plan.ops[program.start as usize..program.end as usize];
            loop {
                let cursor = state.global_cursor[gi];
                if cursor >= ops.len() || program.max_keys[cursor] as usize > t {
                    break;
                }
                let DecodeState { pages, page_rows, global_q, global_acc, .. } = &mut *state;
                let kv = PagedKv::new(pages, *page_rows);
                run_decode_ops(
                    exp,
                    recip,
                    plan,
                    &ops[cursor..=cursor],
                    &global_q[gi],
                    &kv,
                    d,
                    scratch,
                    &mut global_acc[gi],
                    &mut sat,
                )?;
                state.global_cursor[gi] = cursor + 1;
            }
        }

        state.sat.merge(sat);
        Ok(step.map(|(raw, weight_q16)| StepOutput {
            position: t,
            output: raw.iter().map(|&r| Fix16x8::to_f32(r)).collect(),
            raw,
            weight_q16,
            saturation_events: sat.events,
        }))
    }
}

/// Returns every fully-written, globally-unpinned page below the plan's
/// live horizon to the pool. The horizon (and the history length) is
/// monotone over a session, so `reclaim_floor` lets each page be
/// examined exactly once — O(1) amortized per step.
fn reclaim_dead_pages(plan: &DecodePlan, state: &mut DecodeState, pool: &mut KvPagePool) {
    let horizon = plan.live_horizon(state.len, &state.global_cursor);
    // Only fully-written pages are candidates: the page holding the next
    // append must stay, whatever the horizon says.
    let limit_pages = (horizon.min(state.len) / state.page_rows).min(state.pages.len());
    if limit_pages <= state.reclaim_floor {
        return;
    }
    let _span = salo_trace::Tracer::global().span_with(
        "sim.kv.reclaim",
        "sim",
        (limit_pages - state.reclaim_floor) as u64,
    );
    for p in state.reclaim_floor..limit_pages {
        let rows = state.page_rows as u32;
        if plan.pins_range(p as u32 * rows, (p as u32 + 1) * rows) {
            continue; // a global token lives here: pinned for the session
        }
        if let Some(page) = state.pages[p].take() {
            pool.reclaim(page);
            state.resident -= 1;
        }
    }
    state.reclaim_floor = limit_pages;
}

/// Stages 1–5 for a slice of decode ops, merged into `acc` in op order —
/// literally the prefill's per-op executor ([`run_op`]), fed K/V through
/// the session's page table instead of a full-sequence load, so
/// decode-vs-prefill bit-identity holds by construction (one shared
/// kernel body).
#[allow(clippy::too_many_arguments)]
fn run_decode_ops(
    exp: &ExpLut,
    recip: &RecipUnit,
    plan: &DecodePlan,
    ops: &[LoweredOp],
    q_row: &[Fix8x4],
    kv: &PagedKv<'_>,
    d: usize,
    scratch: &mut ExecScratch,
    acc: &mut PartialRow,
    sat: &mut MacSaturation,
) -> Result<(), SimError> {
    for op in ops {
        run_op(exp, recip, op.kind, plan.op_keys(op), q_row, kv, d, &mut scratch.op, acc, sat)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AcceleratorConfig;
    use salo_kernels::Qkv;
    use salo_patterns::{HybridPattern, Window};
    use salo_scheduler::HardwareMeta;

    fn accel(rows: usize, cols: usize) -> SpatialAccelerator {
        let config = AcceleratorConfig {
            hw: HardwareMeta::new(rows, cols, 1, 1).unwrap(),
            ..Default::default()
        };
        SpatialAccelerator::new(config)
    }

    fn compile(pattern: &HybridPattern, sim: &SpatialAccelerator) -> (ExecutionPlan, DecodePlan) {
        let plan = ExecutionPlan::build(pattern, sim.config().hw).unwrap();
        let lowered = LoweredPlan::lower(&plan);
        let decode = DecodePlan::lower(&plan, &lowered).unwrap();
        (plan, decode)
    }

    /// Drives a complete session over `qkv` with pages of `page_rows`
    /// rows, comparing every decoded row against the prefill output, and
    /// returns the session state with its pool.
    fn decode_all_paged(
        sim: &SpatialAccelerator,
        pattern: &HybridPattern,
        qkv: &Qkv,
        d: usize,
        page_rows: usize,
    ) -> (DecodeState, KvPagePool) {
        let (plan, decode) = compile(pattern, sim);
        let lowered = LoweredPlan::lower(&plan);
        let scale = SpatialAccelerator::default_scale(d);
        let prefill = sim
            .execute_lowered(&lowered, &qkv.q, &qkv.k, &qkv.v, scale, &mut ExecScratch::new())
            .unwrap();

        let mut pool = KvPagePool::new(page_rows);
        let mut state = DecodeState::new(&decode, d);
        let mut scratch = ExecScratch::new();
        for t in 0..pattern.n() {
            let (q, k, v) = (qkv.q.row(t), qkv.k.row(t), qkv.v.row(t));
            if t < decode.min_step() {
                sim.prime_token(&decode, &mut state, q, k, v, scale, &mut pool, &mut scratch)
                    .unwrap();
                continue;
            }
            let step = sim
                .execute_step(&decode, &mut state, q, k, v, scale, &mut pool, &mut scratch)
                .unwrap();
            assert_eq!(step.position, t);
            let prefill_row: Vec<_> = (0..d).map(|c| prefill.raw.get(t, c)).collect();
            assert_eq!(step.raw, prefill_row, "row {t} raw outputs (page_rows={page_rows})");
            assert_eq!(step.weight_q16, prefill.weights_q16[t], "row {t} weight");
        }
        // Global rows have fully caught up and match the prefill bit for
        // bit.
        assert_eq!(state.pending_global_ops(&decode), 0);
        for (gi, &g) in decode.globals().iter().enumerate() {
            let (raw, weight) = state.global_row_output(gi);
            let prefill_row: Vec<_> = (0..d).map(|c| prefill.raw.get(g as usize, c)).collect();
            assert_eq!(raw, prefill_row, "global row {g}");
            assert_eq!(weight, prefill.weights_q16[g as usize]);
        }
        assert_eq!(state.saturation_events(), prefill.report.saturation_events);
        assert_eq!(pool.pages_in_use(), state.resident_pages(), "pool and state accounting agree");
        (state, pool)
    }

    /// Single-page sessions (page covers the whole sequence) are the
    /// contiguous-arena baseline every smaller page size is compared to.
    fn decode_all(
        sim: &SpatialAccelerator,
        pattern: &HybridPattern,
        qkv: &Qkv,
        d: usize,
    ) -> (DecodeState, KvPagePool) {
        decode_all_paged(sim, pattern, qkv, d, pattern.n())
    }

    #[test]
    fn causal_window_with_sink_decodes_bit_identically() {
        let pattern = HybridPattern::builder(40)
            .window(Window::symmetric(9).unwrap())
            .global_token(0)
            .build()
            .unwrap()
            .decode_view()
            .unwrap()
            .causal_pattern()
            .clone();
        let sim = accel(8, 8);
        let qkv = Qkv::random(40, 8, 7);
        decode_all(&sim, &pattern, &qkv, 8);
    }

    #[test]
    fn paged_sessions_decode_bit_identically_across_page_sizes() {
        // The page-translation edge cases: a page size of 1 (every step
        // crosses a page boundary), sizes where the window straddles
        // boundaries mid-page, and a size larger than the sequence
        // (degenerate single page). All must match the prefill oracle —
        // decode_all_paged asserts every row — and small pages must
        // actually reclaim.
        let pattern = HybridPattern::builder(40)
            .window(Window::symmetric(9).unwrap())
            .global_token(0)
            .build()
            .unwrap()
            .decode_view()
            .unwrap()
            .causal_pattern()
            .clone();
        let sim = accel(8, 8);
        let qkv = Qkv::random(40, 8, 7);
        for page_rows in [1, 3, 8, 64] {
            let (state, pool) = decode_all_paged(&sim, &pattern, &qkv, 8, page_rows);
            let stats = pool.stats();
            if page_rows <= 8 {
                assert!(stats.reclaimed > 0, "page_rows={page_rows} reclaimed nothing");
                // Residency is O(active window + pinned globals), not
                // O(history): window radius 9 spans at most
                // ceil(10/R) + 1 live pages, plus the pinned sink page
                // and the write head.
                let bound = 10_usize.div_ceil(page_rows) + 3;
                assert!(
                    state.resident_pages() <= bound,
                    "page_rows={page_rows}: {} resident pages > bound {bound}",
                    state.resident_pages()
                );
            } else {
                assert_eq!(stats.reclaimed, 0, "one-page session has nothing to reclaim");
            }
            assert_eq!(stats.exhausted, 0);
        }
    }

    #[test]
    fn step_on_page_boundary_is_bit_identical() {
        // Capacity an exact multiple of the page size: the last step of
        // every page and the first step of the next both translate
        // correctly (decode_all_paged asserts each row against prefill).
        let pattern = HybridPattern::builder(32)
            .window(Window::causal(7).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let sim = accel(8, 8);
        let qkv = Qkv::random(32, 8, 13);
        for page_rows in [4, 8, 16] {
            assert_eq!(32 % page_rows, 0, "test wants exact page multiples");
            decode_all_paged(&sim, &pattern, &qkv, 8, page_rows);
        }
    }

    #[test]
    fn dilated_pattern_decodes_bit_identically() {
        let pattern = HybridPattern::builder(36)
            .window(Window::dilated(-9, 9, 3).unwrap())
            .window(Window::causal(4).unwrap())
            .global_token(0)
            .global_token(1)
            .build()
            .unwrap()
            .decode_view()
            .unwrap()
            .causal_pattern()
            .clone();
        let sim = accel(4, 4);
        let qkv = Qkv::random(36, 4, 23);
        decode_all(&sim, &pattern, &qkv, 4);
        // Dilation stride 3 with pages of 2 rows: an op's key list skips
        // whole pages between touched ones; translation must still land
        // on the right slots (asserted row-by-row inside).
        decode_all_paged(&sim, &pattern, &qkv, 4, 2);
    }

    #[test]
    fn global_rows_pin_their_pages() {
        // Globals at positions 0 and 1 pin page 0 (page_rows=2) forever;
        // window pages behind the horizon are freed. With a long tail the
        // session must end with the pinned page still resident and
        // several reclaims behind it.
        let pattern = HybridPattern::builder(48)
            .window(Window::causal(5).unwrap())
            .global_token(0)
            .global_token(1)
            .build()
            .unwrap();
        let sim = accel(8, 8);
        let qkv = Qkv::random(48, 8, 31);
        let (state, pool) = decode_all_paged(&sim, &pattern, &qkv, 8, 2);
        let stats = pool.stats();
        assert!(stats.reclaimed >= 10, "long tail reclaims many pages, got {}", stats.reclaimed);
        // The pinned global page is still materialized.
        assert!(state.resident_pages() >= 1);
        assert!(state.resident_pages() <= 8, "residency stays O(window), not O(history)");
    }

    #[test]
    fn windowless_global_only_pattern_decodes() {
        let pattern = HybridPattern::builder(20).global_token(0).build().unwrap();
        let sim = accel(4, 4);
        let qkv = Qkv::random(20, 4, 5);
        decode_all(&sim, &pattern, &qkv, 4);
        // With no window, *only* the global page stays live; everything
        // else reclaims as soon as its page fills.
        let (state, _pool) = decode_all_paged(&sim, &pattern, &qkv, 4, 2);
        assert!(state.resident_pages() <= 2, "global-only session keeps pinned page + write head");
    }

    #[test]
    fn reset_returns_pages_for_other_sessions() {
        // A pool bounded to exactly one session's worth of pages: session
        // A consumes it, reset hands the pages back, and session B can
        // run to completion on the same pool — the regression test for
        // reset keeping pages captive.
        let pattern = HybridPattern::builder(16)
            .window(Window::causal(3).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let sim = accel(4, 4);
        let (_, decode) = compile(&pattern, &sim);
        let scale = SpatialAccelerator::default_scale(4);
        let qkv = Qkv::random(16, 4, 3);
        // page_rows=16 => a full session needs exactly one page; bound
        // the pool to one.
        let mut pool = KvPagePool::bounded(16, 1);
        let mut scratch = ExecScratch::new();

        let run = |state: &mut DecodeState, pool: &mut KvPagePool, scratch: &mut ExecScratch| {
            sim.prime_token(
                &decode,
                state,
                qkv.q.row(0),
                qkv.k.row(0),
                qkv.v.row(0),
                scale,
                pool,
                scratch,
            )
            .unwrap();
            for t in 1..16 {
                sim.execute_step(
                    &decode,
                    state,
                    qkv.q.row(t),
                    qkv.k.row(t),
                    qkv.v.row(t),
                    scale,
                    pool,
                    scratch,
                )
                .unwrap();
            }
        };

        let mut a = DecodeState::new(&decode, 4);
        run(&mut a, &mut pool, &mut scratch);
        assert_eq!(pool.pages_in_use(), 1);

        // A second session cannot start while A holds the only page...
        let mut b = DecodeState::new(&decode, 4);
        let err = sim.prime_token(
            &decode,
            &mut b,
            qkv.q.row(0),
            qkv.k.row(0),
            qkv.v.row(0),
            scale,
            &mut pool,
            &mut scratch,
        );
        assert!(matches!(err, Err(SimError::PagePoolExhausted { in_use: 1, capacity: 1 })));
        assert!(!b.is_poisoned(), "exhaustion is a clean failure");
        assert_eq!(b.position(), 0, "nothing was ingested");

        // ...but after A resets, its page is immediately reusable by B.
        a.reset(&decode, 4, &mut pool);
        assert_eq!(pool.pages_in_use(), 0);
        run(&mut b, &mut pool, &mut scratch);
        assert_eq!(pool.stats().exhausted, 1);
    }

    #[test]
    fn release_empties_the_page_table() {
        let pattern = HybridPattern::builder(12)
            .window(Window::causal(3).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let sim = accel(4, 4);
        let (_, decode) = compile(&pattern, &sim);
        let scale = SpatialAccelerator::default_scale(4);
        let mut pool = KvPagePool::new(4);
        let mut scratch = ExecScratch::new();
        let row = [0.5f32; 4];
        let mut state = DecodeState::new(&decode, 4);
        sim.prime_token(&decode, &mut state, &row, &row, &row, scale, &mut pool, &mut scratch)
            .unwrap();
        for _ in 1..12 {
            sim.execute_step(&decode, &mut state, &row, &row, &row, scale, &mut pool, &mut scratch)
                .unwrap();
        }
        assert!(pool.pages_in_use() > 0);
        state.release(&mut pool);
        assert_eq!(pool.pages_in_use(), 0);
        assert_eq!(state.resident_pages(), 0);
        assert_eq!(state.resident_kv_bytes(), 0);
    }

    #[test]
    fn fused_steps_match_sequential_stepping() {
        // Three sessions over one plan, advanced in lockstep: the fused
        // execute_steps pass must produce exactly the bits sequential
        // per-session execute_step calls do.
        let pattern = HybridPattern::builder(24)
            .window(Window::causal(5).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let sim = accel(4, 4);
        let (_, decode) = compile(&pattern, &sim);
        let scale = SpatialAccelerator::default_scale(4);
        let qkvs: Vec<Qkv> = (0..3).map(|s| Qkv::random(24, 4, 40 + s)).collect();

        let mut seq_pool = KvPagePool::new(4);
        let mut fused_pool = KvPagePool::new(4);
        let mut seq_scratch = ExecScratch::new();
        let mut fused_scratch = ExecScratch::new();
        let mut seq: Vec<DecodeState> = (0..3).map(|_| DecodeState::new(&decode, 4)).collect();
        let mut fused: Vec<DecodeState> = (0..3).map(|_| DecodeState::new(&decode, 4)).collect();
        for (qkv, state) in qkvs.iter().zip(seq.iter_mut()) {
            sim.prime_token(
                &decode,
                state,
                qkv.q.row(0),
                qkv.k.row(0),
                qkv.v.row(0),
                scale,
                &mut seq_pool,
                &mut seq_scratch,
            )
            .unwrap();
        }
        for (qkv, state) in qkvs.iter().zip(fused.iter_mut()) {
            sim.prime_token(
                &decode,
                state,
                qkv.q.row(0),
                qkv.k.row(0),
                qkv.v.row(0),
                scale,
                &mut fused_pool,
                &mut fused_scratch,
            )
            .unwrap();
        }
        for t in 1..24 {
            let sequential: Vec<StepOutput> = qkvs
                .iter()
                .zip(seq.iter_mut())
                .map(|(qkv, state)| {
                    sim.execute_step(
                        &decode,
                        state,
                        qkv.q.row(t),
                        qkv.k.row(t),
                        qkv.v.row(t),
                        scale,
                        &mut seq_pool,
                        &mut seq_scratch,
                    )
                    .unwrap()
                })
                .collect();
            let mut batch: Vec<BatchStep<'_>> = qkvs
                .iter()
                .zip(fused.iter_mut())
                .map(|(qkv, state)| BatchStep {
                    state,
                    q_t: qkv.q.row(t),
                    k_t: qkv.k.row(t),
                    v_t: qkv.v.row(t),
                    scale,
                })
                .collect();
            let fused_out =
                sim.execute_steps(&decode, &mut batch, &mut fused_pool, &mut fused_scratch);
            for (s, f) in sequential.iter().zip(fused_out) {
                assert_eq!(*s, f.unwrap(), "fused step diverged at t={t}");
            }
        }
        for (s, f) in seq.iter().zip(&fused) {
            assert_eq!(s.saturation_events(), f.saturation_events());
        }
    }

    #[test]
    fn anticausal_plan_rejected() {
        let pattern =
            HybridPattern::builder(24).window(Window::symmetric(7).unwrap()).build().unwrap();
        let sim = accel(8, 8);
        let plan = ExecutionPlan::build(&pattern, sim.config().hw).unwrap();
        let lowered = LoweredPlan::lower(&plan);
        assert!(matches!(DecodePlan::lower(&plan, &lowered), Err(SimError::AnticausalPlan { .. })));
    }

    #[test]
    fn step_guards_capacity_priming_and_dimensions() {
        let pattern = HybridPattern::builder(8)
            .window(Window::causal(3).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let sim = accel(4, 4);
        let (_, decode) = compile(&pattern, &sim);
        assert_eq!(decode.min_step(), 1);
        let mut state = DecodeState::new(&decode, 4);
        let mut pool = KvPagePool::default();
        let mut scratch = ExecScratch::new();
        let row = [0.5f32; 4];

        // Stepping before the prompt covers the global token fails.
        assert!(matches!(
            sim.execute_step(&decode, &mut state, &row, &row, &row, 0.5, &mut pool, &mut scratch),
            Err(SimError::DecodeNotPrimed { position: 0, min_step: 1 })
        ));
        // Wrong token dimension fails without mutating the state.
        let short = [0.5f32; 3];
        assert!(matches!(
            sim.prime_token(&decode, &mut state, &short, &row, &row, 0.5, &mut pool, &mut scratch),
            Err(SimError::TokenDim { expected: 4, got: 3 })
        ));
        assert_eq!(state.position(), 0);

        sim.prime_token(&decode, &mut state, &row, &row, &row, 0.5, &mut pool, &mut scratch)
            .unwrap();
        for _ in 1..8 {
            sim.execute_step(&decode, &mut state, &row, &row, &row, 0.5, &mut pool, &mut scratch)
                .unwrap();
        }
        // Capacity exhausted.
        assert!(matches!(
            sim.execute_step(&decode, &mut state, &row, &row, &row, 0.5, &mut pool, &mut scratch),
            Err(SimError::DecodeCapacity { n: 8 })
        ));

        // A state from another plan is refused.
        let other = HybridPattern::builder(12).window(Window::causal(3).unwrap()).build().unwrap();
        let (_, other_decode) = compile(&other, &sim);
        assert!(matches!(
            sim.execute_step(
                &other_decode,
                &mut state,
                &row,
                &row,
                &row,
                0.5,
                &mut pool,
                &mut scratch
            ),
            Err(SimError::StaleDecodeState { state_n: 8, plan_n: 12 })
        ));

        // Even with equal capacity AND equal global count, a different
        // plan (global at another position, different window) is refused
        // — the guard compares the program fingerprint, not just shapes.
        let same_shape = HybridPattern::builder(8)
            .window(Window::causal(2).unwrap())
            .global_token(3)
            .build()
            .unwrap();
        let (_, same_shape_decode) = compile(&same_shape, &sim);
        assert_ne!(decode.fingerprint(), same_shape_decode.fingerprint());
        let mut state = DecodeState::new(&decode, 4);
        sim.prime_token(&decode, &mut state, &row, &row, &row, 0.5, &mut pool, &mut scratch)
            .unwrap();
        assert!(matches!(
            sim.execute_step(
                &same_shape_decode,
                &mut state,
                &row,
                &row,
                &row,
                0.5,
                &mut pool,
                &mut scratch
            ),
            Err(SimError::StaleDecodeState { state_n: 8, plan_n: 8 })
        ));
    }

    #[test]
    fn poisoned_state_rejects_advances_until_reset() {
        // A step that fails after its token entered the history leaves
        // the state inconsistent (appended K/V, advanced position):
        // every further advance must be refused, validation errors must
        // NOT poison (they precede the mutation), and reset() recovers.
        let pattern = HybridPattern::builder(8)
            .window(Window::causal(3).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let sim = accel(4, 4);
        let (_, decode) = compile(&pattern, &sim);
        let mut state = DecodeState::new(&decode, 4);
        let mut pool = KvPagePool::default();
        let mut scratch = ExecScratch::new();
        let row = [0.5f32; 4];

        // Validation failures leave the state clean and usable.
        let short = [0.5f32; 3];
        assert!(sim
            .prime_token(&decode, &mut state, &short, &row, &row, 0.5, &mut pool, &mut scratch)
            .is_err());
        assert!(!state.is_poisoned());
        sim.prime_token(&decode, &mut state, &row, &row, &row, 0.5, &mut pool, &mut scratch)
            .unwrap();
        sim.execute_step(&decode, &mut state, &row, &row, &row, 0.5, &mut pool, &mut scratch)
            .unwrap();

        // A mid-step failure poisons: both step and prime are refused.
        state.poisoned = true;
        let position = state.position();
        assert!(matches!(
            sim.execute_step(&decode, &mut state, &row, &row, &row, 0.5, &mut pool, &mut scratch),
            Err(SimError::PoisonedDecodeState)
        ));
        assert!(matches!(
            sim.prime_token(&decode, &mut state, &row, &row, &row, 0.5, &mut pool, &mut scratch),
            Err(SimError::PoisonedDecodeState)
        ));
        assert_eq!(state.position(), position, "refused advances do not move the session");

        // Reset rebinds the state to a clean, decodable session.
        state.reset(&decode, 4, &mut pool);
        assert!(!state.is_poisoned());
        sim.prime_token(&decode, &mut state, &row, &row, &row, 0.5, &mut pool, &mut scratch)
            .unwrap();
        sim.execute_step(&decode, &mut state, &row, &row, &row, 0.5, &mut pool, &mut scratch)
            .unwrap();
    }

    #[test]
    fn reset_state_is_bit_transparent_across_shapes() {
        let sim = accel(4, 4);
        let a = HybridPattern::builder(24)
            .window(Window::causal(5).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let b = HybridPattern::builder(16).window(Window::causal(9).unwrap()).build().unwrap();
        let (_, da) = compile(&a, &sim);
        let (_, db) = compile(&b, &sim);

        // Run a on a fresh state, then b and a again on a reused one.
        let qkv_a = Qkv::random(24, 4, 1);
        let qkv_b = Qkv::random(16, 6, 2);
        let (fresh, _) = decode_all(&sim, &a, &qkv_a, 4);

        let mut pool = KvPagePool::new(4);
        let mut state = DecodeState::new(&db, 6);
        let mut scratch = ExecScratch::new();
        let scale = SpatialAccelerator::default_scale(6);
        for t in 0..16 {
            sim.execute_step(
                &db,
                &mut state,
                qkv_b.q.row(t),
                qkv_b.k.row(t),
                qkv_b.v.row(t),
                scale,
                &mut pool,
                &mut scratch,
            )
            .unwrap();
        }
        state.reset(&da, 4, &mut pool);
        let scale = SpatialAccelerator::default_scale(4);
        sim.prime_token(
            &da,
            &mut state,
            qkv_a.q.row(0),
            qkv_a.k.row(0),
            qkv_a.v.row(0),
            scale,
            &mut pool,
            &mut scratch,
        )
        .unwrap();
        for t in 1..24 {
            sim.execute_step(
                &da,
                &mut state,
                qkv_a.q.row(t),
                qkv_a.k.row(t),
                qkv_a.v.row(t),
                scale,
                &mut pool,
                &mut scratch,
            )
            .unwrap();
        }
        let (raw_reused, w_reused) = state.global_row_output(0);
        let (raw_fresh, w_fresh) = fresh.global_row_output(0);
        assert_eq!(raw_reused, raw_fresh, "reused state diverged from fresh");
        assert_eq!(w_reused, w_fresh);
        assert_eq!(state.saturation_events(), fresh.saturation_events());
    }
}
