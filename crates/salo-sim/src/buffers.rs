//! On-chip buffer capacity analysis and DRAM traffic estimation.
//!
//! Table 1 sizes the buffers at 16 KB (Q) / 32 KB (K) / 32 KB (V) /
//! 32 KB (out). With 8-bit inputs and `d = 64` that is 256 query vectors
//! and 512 key/value vectors — deliberately matched to the Longformer
//! window of 512. This module checks whether a workload's sliding working
//! set fits those buffers and estimates the DRAM traffic per head:
//! compulsory (each vector fetched once) when it fits, inflated by a
//! thrash factor when it does not. `A^3`'s scalability problem (§2.2 —
//! "stores the whole preprocessed key matrix on the SRAM buffer") is
//! exactly the failure mode this quantifies.

use salo_scheduler::ExecutionPlan;

use crate::AcceleratorConfig;

/// Result of sizing a plan against the on-chip buffers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferAnalysis {
    /// Bytes of key/value working set per query tile
    /// (window span + tile height vectors, 8-bit elements).
    pub kv_working_set_bytes: usize,
    /// Key buffer capacity in vectors of the analyzed dimension.
    pub key_capacity_vectors: usize,
    /// Whether the sliding working set fits the key/value buffers
    /// (fetch-once streaming is then possible).
    pub fits: bool,
    /// Traffic inflation when the working set exceeds capacity
    /// (`max(1, working_set/capacity)`).
    pub reload_factor: f64,
    /// Estimated DRAM bytes per head: Q + K/V (with reload) + outputs.
    pub dram_bytes_per_head: u64,
}

impl BufferAnalysis {
    /// Analyzes a plan for head dimension `d` against a configuration's
    /// buffers.
    #[must_use]
    pub fn analyze(config: &AcceleratorConfig, plan: &ExecutionPlan, d: usize) -> Self {
        let n = plan.n() as u64;
        let d_u = d as u64;

        // Sliding K/V working set: the widest per-tile key span across
        // components (offset span + tile height).
        let mut working_vectors = 0usize;
        for comp in plan.components() {
            let span = match (comp.offsets().first(), comp.offsets().last()) {
                (Some(&lo), Some(&hi)) => (hi - lo) as usize + 1,
                _ => 0,
            };
            working_vectors = working_vectors.max(span + config.hw.pe_rows);
        }
        let kv_working_set_bytes = working_vectors * d;

        let key_capacity_vectors = (config.buffers.key_kb * 1024) / d.max(1);
        let fits = working_vectors <= key_capacity_vectors;
        let reload_factor = if fits || key_capacity_vectors == 0 {
            1.0
        } else {
            working_vectors as f64 / key_capacity_vectors as f64
        };

        // Compulsory traffic: Q and K/V vectors once, outputs once (16-bit).
        let q_bytes = n * d_u;
        let kv_bytes = (2 * n * d_u) as f64 * reload_factor;
        let out_bytes = n * d_u * 2;
        Self {
            kv_working_set_bytes,
            key_capacity_vectors,
            fits,
            reload_factor,
            dram_bytes_per_head: q_bytes + kv_bytes as u64 + out_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::{longformer, sliding_only};
    use salo_scheduler::{ExecutionPlan, HardwareMeta};

    fn plan_for(pattern: &salo_patterns::HybridPattern) -> ExecutionPlan {
        ExecutionPlan::build(pattern, HardwareMeta::default()).unwrap()
    }

    #[test]
    fn longformer_window_sized_to_buffers() {
        // Table 1's 32 KB key buffer holds exactly 512 d=64 vectors; the
        // Longformer working set (512 + 32) slightly exceeds it.
        let config = AcceleratorConfig::default();
        let plan = plan_for(&longformer(4096, 512, 1).unwrap());
        let a = BufferAnalysis::analyze(&config, &plan, 64);
        assert_eq!(a.key_capacity_vectors, 512);
        assert_eq!(a.kv_working_set_bytes, (512 + 32) * 64);
        assert!(!a.fits);
        assert!(a.reload_factor < 1.1, "mild inflation {}", a.reload_factor);
    }

    #[test]
    fn small_windows_fit_comfortably() {
        let config = AcceleratorConfig::default();
        let plan = plan_for(&sliding_only(2048, 128).unwrap());
        let a = BufferAnalysis::analyze(&config, &plan, 64);
        assert!(a.fits);
        assert_eq!(a.reload_factor, 1.0);
        // Compulsory-only: q + 2kv + 2out bytes.
        assert_eq!(a.dram_bytes_per_head, 2048 * 64 * (1 + 2 + 2));
    }

    #[test]
    fn dense_attention_thrashes() {
        // A full window at n=4096 would need the whole K matrix resident:
        // the A^3 scalability problem the paper cites.
        let config = AcceleratorConfig::default();
        let plan = plan_for(&sliding_only(2048, 4095).unwrap());
        let a = BufferAnalysis::analyze(&config, &plan, 64);
        assert!(!a.fits);
        assert!(a.reload_factor > 8.0, "thrash factor {}", a.reload_factor);
    }

    #[test]
    fn smaller_head_dim_raises_capacity() {
        let config = AcceleratorConfig::default();
        let plan = plan_for(&longformer(1024, 512, 1).unwrap());
        let wide = BufferAnalysis::analyze(&config, &plan, 64);
        let narrow = BufferAnalysis::analyze(&config, &plan, 32);
        assert!(narrow.key_capacity_vectors > wide.key_capacity_vectors);
        assert!(narrow.fits);
    }
}
