//! Energy accounting.
//!
//! The paper reports SALO's energy as synthesized power times execution
//! time (Table 1's 532.66 mW at 1 GHz); that is [`EnergyModel::plan_energy`]
//! with the default configuration. For the dataflow ablations we also
//! expose a *decomposed* model that charges per-operation energies —
//! useful to quantify how much the diagonal-reuse datapath saves in SRAM
//! traffic, which the lumped power number cannot show.

use crate::AcceleratorConfig;

/// Per-operation energy constants (picojoules), 45 nm class.
///
/// Sources: Horowitz, "Computing's energy problem" (ISSCC 2014) gives
/// ~0.2 pJ for an 8-bit MAC and ~5 pJ for a 32 KB SRAM 8-bit read at 45 nm;
/// LUT evaluations are one MAC plus a small table read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpEnergies {
    /// One 8-bit MAC.
    pub mac_pj: f64,
    /// One byte read/written at a 16–32 KB SRAM buffer.
    pub sram_byte_pj: f64,
    /// One LUT evaluation (exp or reciprocal).
    pub lut_pj: f64,
}

impl Default for OpEnergies {
    fn default() -> Self {
        Self { mac_pj: 0.2, sram_byte_pj: 5.0, lut_pj: 0.5 }
    }
}

/// Decomposed energy figures for one plan execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Energy from P x t with the synthesized power (the paper's method).
    pub lumped_j: f64,
    /// MAC energy (stages 1, 2, 4, 5).
    pub mac_j: f64,
    /// SRAM traffic energy (K/V/Q loads, output writes).
    pub sram_j: f64,
    /// LUT evaluations (exp per cell, reciprocal per row per pass).
    pub lut_j: f64,
}

impl EnergyBreakdown {
    /// Total decomposed energy.
    #[must_use]
    pub fn decomposed_j(&self) -> f64 {
        self.mac_j + self.sram_j + self.lut_j
    }
}

/// The accelerator energy model.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    power_w: f64,
    cycle_time_s: f64,
    ops: OpEnergies,
}

impl EnergyModel {
    /// Builds the model from a configuration with default op energies.
    #[must_use]
    pub fn new(config: &AcceleratorConfig) -> Self {
        Self::with_ops(config, OpEnergies::default())
    }

    /// Builds the model with custom per-op energies.
    #[must_use]
    pub fn with_ops(config: &AcceleratorConfig, ops: OpEnergies) -> Self {
        Self { power_w: config.power_w, cycle_time_s: config.cycle_time_s(), ops }
    }

    /// Lumped energy for a cycle count: `P x t` (the paper's methodology).
    #[must_use]
    pub fn lumped_energy_j(&self, cycles: u64) -> f64 {
        self.power_w * cycles as f64 * self.cycle_time_s
    }

    /// Full breakdown given execution counters.
    ///
    /// * `cycles` — total cycles;
    /// * `macs` — MAC operations (2 per active cell per dimension plus the
    ///   per-cell stage-2/4 multiplies);
    /// * `sram_bytes` — buffer bytes moved;
    /// * `lut_evals` — exp and reciprocal evaluations.
    #[must_use]
    pub fn breakdown(
        &self,
        cycles: u64,
        macs: u64,
        sram_bytes: u64,
        lut_evals: u64,
    ) -> EnergyBreakdown {
        EnergyBreakdown {
            lumped_j: self.lumped_energy_j(cycles),
            mac_j: macs as f64 * self.ops.mac_pj * 1e-12,
            sram_j: sram_bytes as f64 * self.ops.sram_byte_pj * 1e-12,
            lut_j: lut_evals as f64 * self.ops.lut_pj * 1e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lumped_energy_is_power_times_time() {
        let m = EnergyModel::new(&AcceleratorConfig::default());
        // 1e9 cycles at 1 GHz = 1 s -> 0.53266 J.
        let e = m.lumped_energy_j(1_000_000_000);
        assert!((e - 0.53266).abs() < 1e-9, "e {e}");
    }

    #[test]
    fn breakdown_scales_with_counters() {
        let m = EnergyModel::new(&AcceleratorConfig::default());
        let a = m.breakdown(1000, 1_000_000, 10_000, 5_000);
        let b = m.breakdown(1000, 2_000_000, 10_000, 5_000);
        assert!(b.mac_j > a.mac_j);
        assert_eq!(b.sram_j, a.sram_j);
        assert!(a.decomposed_j() > 0.0);
    }

    #[test]
    fn decomposed_energy_same_order_as_lumped() {
        // A fully-busy second of the array: ~1024 MACs/cycle.
        let m = EnergyModel::new(&AcceleratorConfig::default());
        let cycles = 1_000_000_000u64;
        let macs = cycles * 1024 * 3 / 4; // ~75 % utilization
        let sram = cycles * 40; // ~40 B/cycle of buffer traffic
        let b = m.breakdown(cycles, macs, sram, cycles / 3);
        let ratio = b.decomposed_j() / b.lumped_j;
        // The decomposed dynamic energy should land within ~an order of
        // magnitude of the synthesized power envelope.
        assert!((0.1..10.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn custom_op_energies() {
        let config = AcceleratorConfig::default();
        let m = EnergyModel::with_ops(
            &config,
            OpEnergies { mac_pj: 1.0, sram_byte_pj: 1.0, lut_pj: 1.0 },
        );
        let b = m.breakdown(1, 1, 1, 1);
        assert!((b.mac_j - 1e-12).abs() < 1e-24);
        assert!((b.sram_j - 1e-12).abs() < 1e-24);
        assert!((b.lut_j - 1e-12).abs() < 1e-24);
    }
}
