//! Execution timelines: when each pass occupies the array.
//!
//! The cycle model says how long a plan takes; the timeline says *what the
//! array is doing when* — which component, tile and chunk each initiation
//! interval belongs to, and where the global units are busy. Used for
//! debugging schedules and by examples to show the machine at work.

use salo_scheduler::ExecutionPlan;

use crate::{AcceleratorConfig, CycleModel};

/// One scheduled pass occurrence on the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassSlot {
    /// Pass index in plan order.
    pub index: usize,
    /// First cycle of this pass's initiation interval.
    pub start_cycle: u64,
    /// One past the last cycle.
    pub end_cycle: u64,
    /// Component executed.
    pub component: usize,
    /// Query-tile start (virtual index).
    pub tile_start: usize,
    /// Offset-chunk start.
    pub chunk_start: usize,
    /// Active score cells in this pass.
    pub active_cells: u64,
    /// Whether a global PE row duty runs alongside.
    pub global_row_busy: bool,
    /// Whether a global PE column duty runs alongside.
    pub global_col_busy: bool,
}

/// A whole-plan timeline for one head.
#[derive(Debug, Clone)]
pub struct Timeline {
    slots: Vec<PassSlot>,
    interval: u64,
    fill_drain: u64,
}

impl Timeline {
    /// Builds the timeline of `plan` on `config` for head dimension `d`.
    #[must_use]
    pub fn from_plan(plan: &ExecutionPlan, config: &AcceleratorConfig, d: usize) -> Self {
        let model = CycleModel::new(config);
        let interval = model.pass_interval(d);
        let fill_drain = if config.pipelined {
            2 * (config.hw.pe_rows + config.hw.pe_cols - 2) as u64
        } else {
            0
        };
        let mut slots = Vec::with_capacity(plan.passes().len());
        let mut cursor = fill_drain / 2; // fill before the first interval
        for (index, pass) in plan.passes().iter().enumerate() {
            slots.push(PassSlot {
                index,
                start_cycle: cursor,
                end_cycle: cursor + interval,
                component: pass.component,
                tile_start: pass.tile_start,
                chunk_start: pass.chunk_start,
                active_cells: plan.pass_active_cells(pass),
                global_row_busy: !pass.global_row.is_empty(),
                global_col_busy: !pass.global_col.is_empty(),
            });
            cursor += interval;
        }
        Self { slots, interval, fill_drain }
    }

    /// The scheduled slots, in time order.
    #[must_use]
    pub fn slots(&self) -> &[PassSlot] {
        &self.slots
    }

    /// The steady-state initiation interval (cycles).
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Total cycles including pipeline fill/drain — matches the cycle
    /// model's per-head figure (zero for a plan with no array passes).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        match self.slots.last() {
            Some(s) => s.end_cycle + self.fill_drain / 2 + self.fill_drain % 2,
            None => 0,
        }
    }

    /// A compact text rendering: one line per slot (capped), showing the
    /// cycle range, component/tile/chunk and global-unit occupancy.
    #[must_use]
    pub fn render_text(&self, max_slots: usize) -> String {
        let mut out = String::new();
        for slot in self.slots.iter().take(max_slots) {
            out.push_str(&format!(
                "[{:>8}..{:>8}) c{} tile {:>5} chunk {:>4} cells {:>5}{}{}\n",
                slot.start_cycle,
                slot.end_cycle,
                slot.component,
                slot.tile_start,
                slot.chunk_start,
                slot.active_cells,
                if slot.global_row_busy { " +grow" } else { "" },
                if slot.global_col_busy { " +gcol" } else { "" },
            ));
        }
        if self.slots.len() > max_slots {
            out.push_str(&format!("... {} more passes\n", self.slots.len() - max_slots));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::longformer;
    use salo_scheduler::ExecutionPlan;

    fn timeline() -> (Timeline, ExecutionPlan, AcceleratorConfig) {
        let pattern = longformer(256, 32, 1).unwrap();
        let config = AcceleratorConfig::default();
        let plan = ExecutionPlan::build(&pattern, config.hw).unwrap();
        (Timeline::from_plan(&plan, &config, 64), plan, config)
    }

    #[test]
    fn slots_are_contiguous_and_ordered() {
        let (t, plan, _) = timeline();
        assert_eq!(t.slots().len(), plan.passes().len());
        for pair in t.slots().windows(2) {
            assert_eq!(pair[0].end_cycle, pair[1].start_cycle);
        }
        assert_eq!(t.interval(), 168); // 2*64 + 2 + 32 + 4 + 1 + 1
    }

    #[test]
    fn total_matches_cycle_model() {
        let (t, plan, config) = timeline();
        let model = CycleModel::new(&config);
        let stats = plan.stats();
        let expect = model.plan_cycles(stats.passes as u64, 0, 64, 1).per_head;
        assert_eq!(t.total_cycles(), expect);
    }

    #[test]
    fn global_duties_visible() {
        let (t, _, _) = timeline();
        assert!(t.slots().iter().any(|s| s.global_row_busy));
        assert!(t.slots().iter().any(|s| s.global_col_busy));
    }

    #[test]
    fn render_caps_output() {
        let (t, _, _) = timeline();
        let text = t.render_text(5);
        assert_eq!(text.lines().count(), 6, "5 slots + continuation line");
        assert!(text.contains("more passes"));
    }

    #[test]
    fn empty_plan_timeline() {
        use salo_patterns::HybridPattern;
        let pattern = HybridPattern::builder(64).global_token(0).build().unwrap();
        let config = AcceleratorConfig::default();
        let plan = ExecutionPlan::build(&pattern, config.hw).unwrap();
        let t = Timeline::from_plan(&plan, &config, 64);
        assert!(t.slots().is_empty());
    }
}
