//! Cycle-level simulator of the SALO spatial accelerator (§5 of the paper).
//!
//! The accelerator is a `32 x 32` PE array with diagonal key/value
//! streaming, one global PE row, one global PE column and a weighted-sum
//! module per PE row (Fig. 5). Every PE owns a fixed-point MAC reused
//! across the five pipeline stages of Fig. 6:
//!
//! 1. `Q x K^T` in an output-stationary systolic flow;
//! 2. piecewise-linear exponential (Softermax-style LUT);
//! 3. left-to-right row accumulation, one LUT reciprocal at the row edge,
//!    broadcast of the inverse;
//! 4. normalization multiply;
//! 5. `S' x V` in a weight-stationary flow, merged across window splits by
//!    the weighted-sum module (Eq. 2).
//!
//! The simulator has two faces over one
//! [`ExecutionPlan`](salo_scheduler::ExecutionPlan):
//!
//! * [`SpatialAccelerator::execute`] — *functional*: computes real outputs
//!   in the accelerator's exact fixed-point arithmetic, validated against
//!   the golden kernel in `salo-kernels`. The hot form is
//!   [`SpatialAccelerator::execute_lowered`], which consumes a
//!   [`LoweredPlan`] (the plan resolved once into flat pass programs) and
//!   a reusable [`ExecScratch`], making steady-state execution
//!   allocation-free;
//! * [`SpatialAccelerator::estimate`] — *timing*: closed-form cycle
//!   accounting per the five-stage schedule, with pipelined pass overlap
//!   (the default; matches the paper's >75 % utilization on Longformer)
//!   or fully serialized passes (ablation), plus the Table 1 power/area
//!   energy model;
//! * [`SpatialAccelerator::execute_step`] — *streaming decode*: one
//!   generated token per call against a session's persistent quantized
//!   K/V arenas ([`DecodeState`]), through a step-indexed re-bucketing of
//!   the lowered program ([`DecodePlan`]) that keeps every row
//!   bit-identical to the causal-prefill oracle.
//!
//! Paper-substitution note: SALO's artifact is Chisel RTL synthesized at
//! 45 nm; its performance numbers come from a cycle-accurate model extended
//! from Sanger's. This simulator *is* that model, re-derived: arithmetic is
//! bit-deterministic, cycles follow the five-stage schedule, and power/area
//! are the paper's synthesis constants.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bandwidth;
mod buffers;
mod config;
mod cycles;
mod decode;
mod energy;
mod error;
mod exec;
mod lower;
mod partition;
mod report;
mod scaling;
mod systolic;
mod timeline;
mod traffic;

pub use bandwidth::{bandwidth_report, BandwidthReport, DEFAULT_PORT_BYTES_PER_CYCLE};
pub use buffers::BufferAnalysis;
pub use config::{AcceleratorConfig, BufferConfig, TimingParams};
pub use cycles::{CycleBreakdown, CycleModel};
pub use decode::{
    BatchStep, DecodePlan, DecodeState, KvPage, KvPagePool, KvPoolStats, StepOutput,
    DEFAULT_PAGE_ROWS,
};
pub use energy::{EnergyBreakdown, EnergyModel, OpEnergies};
pub use error::SimError;
pub use exec::{ExecScratch, ExecutionOutput, HeadsScratch, SpatialAccelerator};
pub use lower::{LoweredOp, LoweredOpKind, LoweredPlan};
pub use partition::{Partition, Shard, OP_BASE_COST};
pub use report::{ExecutionReport, TimingReport, UtilizationReport};
pub use salo_trace::StageProfile;
pub use scaling::{AreaPowerEstimate, AreaPowerModel};
pub use systolic::{PassTrace, SystolicArray};
pub use timeline::{PassSlot, Timeline};
pub use traffic::TrafficReport;
