//! Plan lowering: resolving an [`ExecutionPlan`] into flat pass programs.
//!
//! The scheduler's plan is the right structure for *building* a schedule —
//! components, virtual offsets, duty lists — but the wrong one for
//! *executing* it millions of times: walking it re-derives plan-static
//! facts on every pass (per-row key gathers via `Component::key_at`,
//! global-token filtering via `ExecutionPlan::is_global`, supplemental
//! `(start..end)` index vectors), all of which depend only on the plan,
//! never on the data. SALO's own premise (§5) is that the dataflow is
//! compiled once and then streamed through the array with no per-pass
//! decision-making; this module is that compilation step for the
//! functional simulator.
//!
//! [`LoweredPlan::lower`] runs every resolution exactly once and emits a
//! CSR-style program: a single arena of pre-filtered key indices plus a
//! flat list of [`LoweredOp`]s in execution order — window-row softmax
//! parts, flattened global-column/row duties, and supplemental ranges. At
//! execution time the datapath just walks the op list: no `Option`, no
//! closures, no global checks, no allocation. The op order replicates the
//! plan walk bit for bit, so the lowered fast path and the event-accurate
//! [`SystolicArray`](crate::SystolicArray) oracle stay bit-identical
//! (asserted by the simulator's proptests).

use salo_scheduler::{ExecutionPlan, PlanStats, SupplementalKind};

/// What one lowered operation computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoweredOpKind {
    /// A full PE-row part: stages 1–5 (scores, softmax, value
    /// accumulation) over the op's key list, merged into the destination
    /// row's weighted-sum module.
    Row,
    /// A single global PE column/row cell: one score, weight `exp(s)`,
    /// output `v_g` at probability one.
    SingleKey,
}

/// One operation of the lowered program.
///
/// `key_start..key_start + key_len` indexes the owning
/// [`LoweredPlan::keys`] arena; the referenced keys are sequence indices,
/// already clipped to the sequence and filtered of global tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweredOp {
    /// Operation kind (row softmax part vs. single-key global cell).
    pub kind: LoweredOpKind,
    /// The query row (sequence index) whose accumulator receives the part.
    pub dest: u32,
    /// Start of this op's key list in the key arena.
    pub key_start: u32,
    /// Number of keys (always 1 for [`LoweredOpKind::SingleKey`]).
    pub key_len: u32,
}

/// Op-range boundaries of one main pass within the lowered program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PassBounds {
    /// First op of the pass (window rows come first).
    start: u32,
    /// First global-duty op (column duties, then row duties).
    global_start: u32,
    /// One past the pass's last op.
    end: u32,
}

/// An [`ExecutionPlan`] resolved into a flat, allocation-free program.
///
/// Produced once per compiled plan (the serving runtime stores it next to
/// the plan in its cache, so cache hits skip lowering entirely) and
/// consumed by
/// [`SpatialAccelerator::execute_lowered`](crate::SpatialAccelerator::execute_lowered).
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredPlan {
    n: usize,
    ops: Vec<LoweredOp>,
    keys: Vec<u32>,
    pass_bounds: Vec<PassBounds>,
    /// First supplemental op (everything from here to the end runs after
    /// the main passes).
    sup_start: u32,
    stats: PlanStats,
    /// Query-row loads summed over passes (traffic accounting input).
    q_loads: u64,
    max_row_keys: usize,
}

impl LoweredPlan {
    /// Lowers a plan into its flat execution program.
    ///
    /// Resolution order matches the simulator's plan walk exactly: for
    /// each main pass, window tile rows top to bottom, then global-column
    /// duties, then global-row duties; after all passes, the supplemental
    /// passes in plan order. Rows with no surviving keys (fully clipped,
    /// masked, or global) emit no op.
    #[must_use]
    pub fn lower(plan: &ExecutionPlan) -> Self {
        let mut ops = Vec::new();
        let mut keys = Vec::new();
        let mut pass_bounds = Vec::with_capacity(plan.passes().len());

        for pass in plan.passes() {
            let start = ops.len() as u32;
            let comp = &plan.components()[pass.component];
            let chunk = &comp.offsets()[pass.chunk_start..pass.chunk_start + pass.chunk_len];
            for u in 0..pass.tile_len {
                let p = pass.tile_start + u;
                let qi = comp.queries()[p];
                if plan.is_global(qi) {
                    continue;
                }
                let key_start = keys.len() as u32;
                for &o in chunk {
                    if let Some(kj) = comp.key_at(p, o) {
                        if !plan.is_global(kj) {
                            keys.push(kj as u32);
                        }
                    }
                }
                let key_len = keys.len() as u32 - key_start;
                if key_len == 0 {
                    continue;
                }
                ops.push(LoweredOp {
                    kind: LoweredOpKind::Row,
                    dest: qi as u32,
                    key_start,
                    key_len,
                });
            }
            let global_start = ops.len() as u32;
            for duty in &pass.global_col {
                for &qi in &duty.fresh_queries {
                    let key_start = keys.len() as u32;
                    keys.push(duty.token as u32);
                    ops.push(LoweredOp {
                        kind: LoweredOpKind::SingleKey,
                        dest: qi,
                        key_start,
                        key_len: 1,
                    });
                }
            }
            for duty in &pass.global_row {
                if duty.fresh_keys.is_empty() {
                    continue;
                }
                let key_start = keys.len() as u32;
                keys.extend(duty.fresh_keys.iter().copied());
                ops.push(LoweredOp {
                    kind: LoweredOpKind::Row,
                    dest: duty.token as u32,
                    key_start,
                    key_len: duty.fresh_keys.len() as u32,
                });
            }
            pass_bounds.push(PassBounds { start, global_start, end: ops.len() as u32 });
        }

        let sup_start = ops.len() as u32;
        for sup in plan.supplemental() {
            match sup.kind {
                SupplementalKind::GlobalRow { token, start, end } => {
                    if start >= end {
                        continue;
                    }
                    let key_start = keys.len() as u32;
                    keys.extend((start..end).map(|k| k as u32));
                    ops.push(LoweredOp {
                        kind: LoweredOpKind::Row,
                        dest: token as u32,
                        key_start,
                        key_len: (end - start) as u32,
                    });
                }
                SupplementalKind::GlobalCol { token, start, end } => {
                    for qi in start..end {
                        let key_start = keys.len() as u32;
                        keys.push(token as u32);
                        ops.push(LoweredOp {
                            kind: LoweredOpKind::SingleKey,
                            dest: qi as u32,
                            key_start,
                            key_len: 1,
                        });
                    }
                }
            }
        }

        let max_row_keys = ops.iter().map(|op| op.key_len as usize).max().unwrap_or(0);
        Self {
            n: plan.n(),
            ops,
            keys,
            pass_bounds,
            sup_start,
            stats: plan.stats(),
            q_loads: plan.passes().iter().map(|p| p.tile_len as u64).sum(),
            max_row_keys,
        }
    }

    /// Sequence length the program was lowered for.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The full op list, in execution order.
    #[must_use]
    pub fn ops(&self) -> &[LoweredOp] {
        &self.ops
    }

    /// The shared key-index arena the ops slice into.
    #[must_use]
    pub fn keys(&self) -> &[u32] {
        &self.keys
    }

    /// Key list of one op.
    #[must_use]
    pub fn op_keys(&self, op: &LoweredOp) -> &[u32] {
        &self.keys[op.key_start as usize..(op.key_start + op.key_len) as usize]
    }

    /// Number of main passes in the program.
    #[must_use]
    pub fn num_passes(&self) -> usize {
        self.pass_bounds.len()
    }

    /// Op range of main pass `i` (window rows and global duties).
    #[must_use]
    pub fn pass_ops(&self, i: usize) -> std::ops::Range<usize> {
        let b = self.pass_bounds[i];
        b.start as usize..b.end as usize
    }

    /// Op range of main pass `i`'s global duties only (the window rows are
    /// executed by the systolic array model on the event-accurate path).
    #[must_use]
    pub fn pass_global_ops(&self, i: usize) -> std::ops::Range<usize> {
        let b = self.pass_bounds[i];
        b.global_start as usize..b.end as usize
    }

    /// Op range of the supplemental passes (run after every main pass).
    #[must_use]
    pub fn supplemental_ops(&self) -> std::ops::Range<usize> {
        self.sup_start as usize..self.ops.len()
    }

    /// Plan statistics, captured once at lowering time.
    #[must_use]
    pub fn stats(&self) -> &PlanStats {
        &self.stats
    }

    /// Query-row loads summed over main passes (traffic input).
    #[must_use]
    pub fn q_loads(&self) -> u64 {
        self.q_loads
    }

    /// The longest key list of any op — the high-water mark for score /
    /// probability scratch buffers.
    #[must_use]
    pub fn max_row_keys(&self) -> usize {
        self.max_row_keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::{longformer, sliding_only, sparse_transformer, HybridPattern};
    use salo_scheduler::HardwareMeta;

    fn lowered(pattern: &HybridPattern, hw: HardwareMeta) -> (ExecutionPlan, LoweredPlan) {
        let plan = ExecutionPlan::build(pattern, hw).unwrap();
        let low = LoweredPlan::lower(&plan);
        (plan, low)
    }

    #[test]
    fn window_ops_carry_no_global_or_out_of_range_keys() {
        let pattern = longformer(96, 11, 2).unwrap();
        let (plan, low) = lowered(&pattern, HardwareMeta::new(8, 8, 1, 1).unwrap());
        assert_eq!(low.n(), 96);
        for (i, _) in plan.passes().iter().enumerate() {
            let range = low.pass_ops(i);
            let globals = low.pass_global_ops(i);
            assert!(range.start <= globals.start && globals.end == range.end);
            for op in &low.ops()[range.start..globals.start] {
                assert_eq!(op.kind, LoweredOpKind::Row);
                assert!(!plan.is_global(op.dest as usize), "window op on a global query");
                for &k in low.op_keys(op) {
                    assert!((k as usize) < 96);
                    assert!(!plan.is_global(k as usize), "window op sees a global key");
                }
            }
        }
    }

    #[test]
    fn op_score_count_matches_plan_stats() {
        // Every score position of the plan appears exactly once in the
        // lowered program: window cells as Row keys, global-column scores
        // as SingleKey ops, global-row scores as Row keys on global
        // destinations.
        for pattern in [
            longformer(64, 9, 2).unwrap(),
            sparse_transformer(60, 4, 5).unwrap(),
            sliding_only(48, 7).unwrap(),
            HybridPattern::builder(40).global_token(3).build().unwrap(),
        ] {
            let hw = if pattern.globals().is_empty() {
                HardwareMeta::new(8, 8, 0, 0).unwrap()
            } else {
                HardwareMeta::new(8, 8, 1, 1).unwrap()
            };
            let (plan, low) = lowered(&pattern, hw);
            let stats = plan.stats();
            let mut window_scores = 0u64;
            let mut single = 0u64;
            let mut global_row = 0u64;
            for op in low.ops() {
                match op.kind {
                    LoweredOpKind::SingleKey => single += 1,
                    LoweredOpKind::Row if plan.is_global(op.dest as usize) => {
                        global_row += u64::from(op.key_len);
                    }
                    LoweredOpKind::Row => window_scores += u64::from(op.key_len),
                }
            }
            assert_eq!(window_scores, stats.active_cells, "{}", pattern.n());
            assert_eq!(single, stats.global_col_scores);
            assert_eq!(global_row, stats.global_row_scores);
            assert_eq!(low.stats(), &stats);
        }
    }

    #[test]
    fn supplemental_ops_follow_every_pass() {
        // A global-only pattern lowers to supplemental ops exclusively.
        let pattern = HybridPattern::builder(30).global_token(0).build().unwrap();
        let (plan, low) = lowered(&pattern, HardwareMeta::new(4, 4, 1, 1).unwrap());
        assert!(plan.passes().is_empty());
        assert_eq!(low.num_passes(), 0);
        assert_eq!(low.supplemental_ops(), 0..low.ops().len());
        assert!(!low.ops().is_empty());
        // The global row must see all 30 keys, the column the other 29
        // queries.
        let row_keys: u64 = low
            .ops()
            .iter()
            .filter(|op| op.kind == LoweredOpKind::Row)
            .map(|op| u64::from(op.key_len))
            .sum();
        let col_ops =
            low.ops().iter().filter(|op| op.kind == LoweredOpKind::SingleKey).count() as u64;
        assert_eq!(row_keys, 30);
        assert_eq!(col_ops, 29);
    }

    #[test]
    fn max_row_keys_bounds_every_op() {
        let pattern = longformer(128, 17, 1).unwrap();
        let (plan, low) = lowered(&pattern, HardwareMeta::new(8, 8, 1, 1).unwrap());
        assert!(low.max_row_keys() > 0);
        assert!(low.ops().iter().all(|op| op.key_len as usize <= low.max_row_keys()));
        assert_eq!(low.q_loads(), plan.passes().iter().map(|p| p.tile_len as u64).sum::<u64>());
    }
}
