//! Functional + timing execution of plans on the simulated accelerator.
//!
//! The hot path executes a [`LoweredPlan`] — the plan resolved once into
//! flat pass programs by [`lower`](crate::LoweredPlan::lower) — against
//! flat quantized-input arenas, with every working buffer owned by a
//! reusable [`ExecScratch`]. Steady-state execution performs no heap
//! allocation and no plan-structure queries: it walks the op list, runs
//! stages 1–5 per op, and merges parts in place
//! ([`merge_partials_into`]). The event-accurate
//! [`execute_systolic`](SpatialAccelerator::execute_systolic) path remains
//! the oracle: it steps the window passes through the cycle-level
//! [`SystolicArray`] and shares the lowered program for global duties, so
//! both paths stay bit-identical.

use salo_fixed::{
    fixed_softmax_parts_into, merge_partials_into, qk_dot, sv_row_mac, sv_row_mac_i32, ExpLut,
    Fix16x8, Fix8x4, MacSaturation, PartialRow, RecipUnit, PROB_ONE, SV_I32_SAFE_KEYS,
};
use salo_kernels::{Matrix, Qkv};
use salo_scheduler::{ExecutionPlan, Pass, PlanStats};
use salo_trace::{StageProfile, StageTimer, Tracer};
use std::sync::Arc;

use crate::partition::{Partition, Shard};
use crate::systolic::SystolicArray;
use crate::{
    AcceleratorConfig, CycleModel, EnergyModel, ExecutionReport, LoweredOpKind, LoweredPlan,
    SimError, TimingReport, TrafficReport, UtilizationReport,
};

/// The simulated SALO accelerator instance.
///
/// Construction builds the exponential and reciprocal lookup tables from
/// the configuration; the instance is immutable and reusable across plans.
/// The tables live behind [`Arc`], so cloning an accelerator (as the
/// serving worker pool does with its per-thread replicas) shares them
/// instead of rebuilding or copying.
#[derive(Debug, Clone)]
pub struct SpatialAccelerator {
    config: AcceleratorConfig,
    exp: Arc<ExpLut>,
    recip: Arc<RecipUnit>,
}

/// The result of a functional execution.
#[derive(Debug, Clone)]
pub struct ExecutionOutput {
    /// Attention output in the 16-bit accelerator format.
    pub raw: Matrix<Fix16x8>,
    /// The output dequantized to `f32`.
    pub output: Matrix<f32>,
    /// Final per-row softmax weights (Q.16) accumulated by the
    /// weighted-sum modules.
    pub weights_q16: Vec<i64>,
    /// Timing, energy, utilization and saturation report.
    pub report: ExecutionReport,
}

/// The per-op working buffers of one five-stage datapath instance —
/// stages 1–5 of a single lowered op, reused across every op an executor
/// runs.
///
/// This is the unit of scratch that becomes *per shard* under the
/// partitioned datapath ([`Partition`](crate::Partition)): each shard
/// owns one `OpScratch`, so concurrent shards never share mutable
/// per-stage state, while the sequential paths keep exactly one.
#[derive(Debug, Clone)]
pub struct OpScratch {
    /// Stage-1 scores of the current op.
    pub(crate) scores: Vec<i32>,
    /// Stage-2 exponentials of the current op.
    pub(crate) exps: Vec<i64>,
    /// Stage-4 probabilities of the current op.
    pub(crate) probs: Vec<u16>,
    /// Stage-5 accumulator: the part produced by the current op.
    pub(crate) part: PartialRow,
    /// 32-bit stage-5 accumulation buffer (ops short enough that the
    /// chain provably fits `i32` — every array-shaped op).
    pub(crate) out32: Vec<i32>,
    /// Accumulated per-stage wall time; only written when `profiling`.
    pub(crate) profile: StageProfile,
    /// Stage-profiling flag: when false each op pays one predicted branch
    /// per stage and never touches the clock.
    pub(crate) profiling: bool,
}

impl Default for OpScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl OpScratch {
    /// An empty per-op scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self {
            scores: Vec::new(),
            exps: Vec::new(),
            probs: Vec::new(),
            part: PartialRow::empty(0),
            out32: Vec::new(),
            profile: StageProfile::default(),
            profiling: false,
        }
    }

    /// Sizes the part/output buffers for dimension `d` and pre-grows the
    /// per-key buffers to `max_keys` so the first ops never reallocate.
    pub(crate) fn prepare(&mut self, d: usize, max_keys: usize) {
        if self.part.out_q19.len() != d {
            self.part.out_q19.clear();
            self.part.out_q19.resize(d, 0);
        }
        self.part.weight_q16 = 0;
        self.out32.clear();
        self.out32.resize(d, 0);
        self.scores.reserve(max_keys);
        self.exps.reserve(max_keys);
        self.probs.reserve(max_keys);
    }
}

/// Reusable working memory of the execution datapath.
///
/// Holds the flat quantized-input arenas (row-major, one row stride per
/// token), the per-op stage buffers (`OpScratch`) and the per-row
/// weighted-sum accumulators. Buffers grow to the high-water mark of the
/// workloads they have seen and are then reused allocation-free across
/// passes, heads and — when held by a serving worker — requests.
///
/// Reuse is bit-transparent: executing with a fresh scratch and with a
/// scratch that has already served other shapes produces identical bits.
#[derive(Debug, Clone)]
pub struct ExecScratch {
    /// Quantized queries (scale folded in), `n * d` row-major.
    qq: Vec<Fix8x4>,
    /// Quantized keys, `n * d` row-major.
    kq: Vec<Fix8x4>,
    /// Quantized values, `n * d` row-major.
    vq: Vec<Fix8x4>,
    /// The per-op stage buffers (the sequential datapath has one).
    pub(crate) op: OpScratch,
    /// Per-row weighted-sum accumulators (the WSM state).
    acc: Vec<PartialRow>,
}

impl Default for ExecScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecScratch {
    /// An empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self {
            qq: Vec::new(),
            kq: Vec::new(),
            vq: Vec::new(),
            op: OpScratch::new(),
            acc: Vec::new(),
        }
    }

    /// Quantizes one head's inputs into the arenas and resets the
    /// accumulators for an `n x d` execution.
    fn load(&mut self, q: &Matrix<f32>, k: &Matrix<f32>, v: &Matrix<f32>, scale: f32, d: usize) {
        // Load-time quantization (scale folded into Q), element order
        // identical to per-row `quantize_with_scale` / `quantize`.
        self.qq.clear();
        self.qq.extend(q.as_slice().iter().map(|&x| Fix8x4::from_f32(x * scale)));
        self.kq.clear();
        self.kq.extend(k.as_slice().iter().map(|&x| Fix8x4::from_f32(x)));
        self.vq.clear();
        self.vq.extend(v.as_slice().iter().map(|&x| Fix8x4::from_f32(x)));

        let n = q.rows();
        self.op.prepare(d, 0);
        reset_acc_rows(&mut self.acc, n, d);
    }

    /// Row `i` of a flat `d`-strided arena.
    #[inline]
    pub(crate) fn row(arena: &[Fix8x4], i: usize, d: usize) -> &[Fix8x4] {
        &arena[i * d..(i + 1) * d]
    }

    /// Enables or disables per-stage datapath profiling for subsequent
    /// executions through this scratch. Disabled (the default) the datapath
    /// pays one predicted branch per stage; enabled it accumulates wall
    /// time per stage into a [`StageProfile`].
    pub fn set_profiling(&mut self, on: bool) {
        self.op.profiling = on;
    }

    /// Whether per-stage profiling is enabled.
    #[must_use]
    pub fn profiling(&self) -> bool {
        self.op.profiling
    }

    /// Takes the accumulated stage profile, leaving the accumulator empty.
    pub fn take_profile(&mut self) -> StageProfile {
        self.op.profile.take()
    }
}

/// Reusable working memory of the **multi-head, partitioned** execution
/// datapath ([`execute_heads_lowered`]).
///
/// Like [`ExecScratch`], but the quantized arenas hold every head
/// back to back (`heads * n * d`, head-major), the weighted-sum
/// accumulators form one flat `heads * n` row vector that shards split
/// without overlap, and each shard owns a private `OpScratch` so
/// concurrent shards never share mutable per-stage state.
///
/// [`execute_heads_lowered`]: SpatialAccelerator::execute_heads_lowered
#[derive(Debug, Clone, Default)]
pub struct HeadsScratch {
    /// Quantized queries (scale folded in), `heads * n * d`, head-major.
    qq: Vec<Fix8x4>,
    /// Quantized keys, `heads * n * d`, head-major.
    kq: Vec<Fix8x4>,
    /// Quantized values, `heads * n * d`, head-major.
    vq: Vec<Fix8x4>,
    /// One per-op scratch per shard (grown to the shard high-water mark).
    shard_ops: Vec<OpScratch>,
    /// Flat per-item accumulators, `heads * n` rows, head-major.
    acc: Vec<PartialRow>,
    /// Stage-profiling flag propagated to every shard's `OpScratch`.
    profiling: bool,
}

impl HeadsScratch {
    /// An empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables per-stage datapath profiling (and per-shard
    /// occupancy/op-count gauges) for subsequent partitioned executions.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Whether per-stage profiling is enabled.
    #[must_use]
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// Quantizes every head's inputs into the head-major arenas and
    /// resets the flat accumulators — element-for-element the same
    /// quantization [`ExecScratch::load`] performs per head.
    fn load(&mut self, heads: &[Qkv], scale: f32, n: usize, d: usize) {
        self.qq.clear();
        self.kq.clear();
        self.vq.clear();
        self.qq.reserve(heads.len() * n * d);
        self.kq.reserve(heads.len() * n * d);
        self.vq.reserve(heads.len() * n * d);
        for h in heads {
            self.qq.extend(h.q.as_slice().iter().map(|&x| Fix8x4::from_f32(x * scale)));
            self.kq.extend(h.k.as_slice().iter().map(|&x| Fix8x4::from_f32(x)));
            self.vq.extend(h.v.as_slice().iter().map(|&x| Fix8x4::from_f32(x)));
        }
        reset_acc_rows(&mut self.acc, heads.len() * n, d);
    }
}

/// Resets `acc` to `n` zeroed `d`-dimensional weighted-sum accumulators,
/// reusing existing row allocations of the right dimension.
fn reset_acc_rows(acc: &mut Vec<PartialRow>, n: usize, d: usize) {
    if acc.len() > n {
        acc.truncate(n);
    }
    for row in acc.iter_mut() {
        row.weight_q16 = 0;
        if row.out_q19.len() == d {
            row.out_q19.fill(0);
        } else {
            row.out_q19.clear();
            row.out_q19.resize(d, 0);
        }
    }
    while acc.len() < n {
        acc.push(PartialRow::empty(d));
    }
}

impl SpatialAccelerator {
    /// Builds an accelerator from a configuration.
    #[must_use]
    pub fn new(config: AcceleratorConfig) -> Self {
        let exp = Arc::new(ExpLut::new(config.exp_segments.max(1)));
        let recip = Arc::new(RecipUnit::new(config.recip_entries.max(1)));
        Self { config, exp, recip }
    }

    /// The Table 1 instance.
    #[must_use]
    pub fn default_instance() -> Self {
        Self::new(AcceleratorConfig::default())
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The shared exponential and reciprocal lookup tables.
    ///
    /// Clones of this accelerator hold the same handles, so a worker pool
    /// built from clones shares one set of tables.
    #[must_use]
    pub fn shared_tables(&self) -> (&Arc<ExpLut>, &Arc<RecipUnit>) {
        (&self.exp, &self.recip)
    }

    /// Timing-only estimate for executing `plan` with `num_heads` heads of
    /// dimension `head_dim` (heads run back to back; the plan is per-head).
    #[must_use]
    pub fn estimate(
        &self,
        plan: &ExecutionPlan,
        head_dim: usize,
        num_heads: usize,
    ) -> TimingReport {
        let stats = plan.stats();
        let q_loads = plan.passes().iter().map(|p| p.tile_len as u64).sum();
        self.timing_report(&stats, q_loads, plan.n(), head_dim, num_heads)
    }

    /// [`estimate`](Self::estimate) from a lowered plan's captured
    /// statistics — no plan traversal.
    #[must_use]
    pub fn estimate_lowered(
        &self,
        lowered: &LoweredPlan,
        head_dim: usize,
        num_heads: usize,
    ) -> TimingReport {
        self.timing_report(lowered.stats(), lowered.q_loads(), lowered.n(), head_dim, num_heads)
    }

    fn timing_report(
        &self,
        stats: &PlanStats,
        q_loads: u64,
        n: usize,
        head_dim: usize,
        num_heads: usize,
    ) -> TimingReport {
        let model = CycleModel::new(&self.config);
        let cycles = model.plan_cycles(
            stats.passes as u64,
            stats.supplemental_passes as u64,
            head_dim,
            num_heads,
        );
        let time_s = cycles.total as f64 * self.config.cycle_time_s();
        let busy = model.pe_busy_cycles(head_dim);
        let array_cycle_slots = self.config.hw.array_pes() as u64 * cycles.per_head.max(1);
        let mac_utilization = (stats.active_cells * busy) as f64 / array_cycle_slots as f64;
        TimingReport {
            cycles,
            time_s,
            energy_j: EnergyModel::new(&self.config).lumped_energy_j(cycles.total),
            utilization: UtilizationReport {
                occupancy: stats.occupancy,
                mac_utilization: mac_utilization.min(1.0),
            },
            traffic: TrafficReport::from_parts(stats, q_loads, n, head_dim),
        }
    }

    /// Functionally executes one head: quantizes the inputs, runs every
    /// pass through the five-stage fixed-point datapath, merges window
    /// splits and global contributions in the weighted-sum modules, and
    /// returns 16-bit outputs with a full report.
    ///
    /// Lowers the plan and allocates a scratch internally; callers
    /// executing a plan more than once should lower it once and use
    /// [`execute_lowered`](Self::execute_lowered) with a reused
    /// [`ExecScratch`].
    ///
    /// `scale` is folded into the query quantization; pass
    /// `1/sqrt(head_dim)` for standard attention (see
    /// [`default_scale`](Self::default_scale)).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ShapeMismatch`] if the matrices disagree with
    /// the plan, or a fixed-point error on numeric degeneracy.
    pub fn execute(
        &self,
        plan: &ExecutionPlan,
        q: &Matrix<f32>,
        k: &Matrix<f32>,
        v: &Matrix<f32>,
        scale: f32,
    ) -> Result<ExecutionOutput, SimError> {
        let lowered = LoweredPlan::lower(plan);
        self.execute_lowered(&lowered, q, k, v, scale, &mut ExecScratch::new())
    }

    /// Executes one head through a pre-lowered plan with caller-owned
    /// scratch — the allocation-free hot path.
    ///
    /// Bit-identical to [`execute`](Self::execute) and to
    /// [`execute_systolic`](Self::execute_systolic) on the same inputs.
    ///
    /// # Errors
    ///
    /// Same as [`execute`](Self::execute).
    pub fn execute_lowered(
        &self,
        lowered: &LoweredPlan,
        q: &Matrix<f32>,
        k: &Matrix<f32>,
        v: &Matrix<f32>,
        scale: f32,
        scratch: &mut ExecScratch,
    ) -> Result<ExecutionOutput, SimError> {
        let tracer = Tracer::global();
        let _span = tracer.span_with("sim.execute_lowered", "sim", lowered.n() as u64);
        if scratch.op.profiling {
            scratch.op.profile = StageProfile::default();
        }
        let d = self.prepare(lowered, q, k, v, scale, scratch)?;
        let mut sat = MacSaturation::default();
        self.run_ops(lowered, 0..lowered.ops().len(), d, scratch, &mut sat)?;
        let mut out = self.drain(lowered, d, scratch, sat);
        if scratch.op.profiling {
            let profile = scratch.op.profile.take();
            emit_stage_spans(tracer, &profile);
            out.report.stages = Some(profile);
        }
        Ok(out)
    }

    /// Executes **all heads** of one layer through a pre-lowered plan,
    /// sharded over `parallelism` scoped threads by the deterministic
    /// work [`Partition`].
    ///
    /// Per-head results are **bit-identical** to running
    /// [`execute_lowered`](Self::execute_lowered) on each head — at
    /// *every* shard count — because shards partition the op list by
    /// destination row: all merges into one weighted-sum accumulator
    /// happen on one shard, in plan order, and merges for different rows
    /// never interact. Saturation counts are summed per head from
    /// per-shard counters (`u64` additions, order-independent). The
    /// partition itself is input-independent, so scheduling can never
    /// leak into outputs. Pinned down by the partition-determinism
    /// proptest suite against the systolic oracle.
    ///
    /// `parallelism <= 1` runs the single shard inline on the calling
    /// thread (no spawn).
    ///
    /// # Errors
    ///
    /// Same as [`execute`](Self::execute); when several shards fail, the
    /// lowest-indexed shard's error is returned (deterministically).
    pub fn execute_heads_lowered(
        &self,
        lowered: &LoweredPlan,
        heads: &[Qkv],
        scale: f32,
        parallelism: usize,
        scratch: &mut HeadsScratch,
    ) -> Result<Vec<ExecutionOutput>, SimError> {
        let n = lowered.n();
        let Some(first) = heads.first() else {
            return Ok(Vec::new());
        };
        for h in heads {
            for m in [&h.q, &h.k, &h.v] {
                if m.rows() != n || m.shape() != first.q.shape() {
                    return Err(SimError::ShapeMismatch { plan_n: n, got: m.shape() });
                }
            }
        }
        let d = first.q.cols();
        let num_heads = heads.len();
        let tracer = Tracer::global();
        let trace_on = tracer.enabled();
        let _span = tracer.span_with("sim.execute_heads", "sim", num_heads as u64);
        scratch.load(heads, scale, n, d);

        let partition = Partition::build(lowered, num_heads, parallelism);
        let num_shards = partition.num_shards();
        if scratch.shard_ops.len() < num_shards {
            scratch.shard_ops.resize_with(num_shards, OpScratch::new);
        }
        let max_keys = lowered.max_row_keys();
        let HeadsScratch { qq, kq, vq, shard_ops, acc, profiling } = scratch;
        let profiling = *profiling;
        for op_scratch in &mut shard_ops[..num_shards] {
            op_scratch.prepare(d, max_keys);
            op_scratch.profiling = profiling;
            op_scratch.profile = StageProfile::default();
        }

        // Split the flat accumulator into non-overlapping per-shard
        // windows; the spans tile `[0, heads * n)`, consuming it exactly.
        let mut windows = Vec::with_capacity(num_shards);
        let mut rest = &mut acc[..];
        for shard in partition.shards() {
            let (win, tail) = rest.split_at_mut(shard.num_items());
            windows.push(win);
            rest = tail;
        }

        let run_shard = |shard: &Shard, bufs: &mut OpScratch, rows: &mut [PartialRow]| {
            let start_ns = if trace_on { salo_trace::now_ns() } else { 0 };
            let mut sats = vec![MacSaturation::default(); num_heads];
            let ops = lowered.ops();
            for &(h, oi) in shard.ops() {
                let (h, oi) = (h as usize, oi as usize);
                let op = &ops[oi];
                let base = h * n * d;
                let dest = op.dest as usize;
                let kv = SliceKv { kq: &kq[base..base + n * d], vq: &vq[base..base + n * d] };
                run_op(
                    &self.exp,
                    &self.recip,
                    op.kind,
                    lowered.op_keys(op),
                    &qq[base + dest * d..base + (dest + 1) * d],
                    &kv,
                    d,
                    bufs,
                    &mut rows[h * n + dest - shard.item_start()],
                    &mut sats[h],
                )?;
            }
            let end_ns = if trace_on { salo_trace::now_ns() } else { 0 };
            Ok::<_, SimError>((sats, start_ns, end_ns))
        };

        // One scoped OS thread per shard: shards are coarse enough that
        // spawn cost is noise, and scoped threads borrow the arenas and
        // accumulator windows directly — no Arc, no channels.
        type ShardRun = Result<(Vec<MacSaturation>, u64, u64), SimError>;
        let shard_sats: Vec<ShardRun> = if num_shards == 1 {
            let rows = windows.pop().expect("single shard has one window");
            vec![run_shard(&partition.shards()[0], &mut shard_ops[0], rows)]
        } else {
            let run_shard = &run_shard;
            std::thread::scope(|scope| {
                let handles: Vec<_> = partition
                    .shards()
                    .iter()
                    .zip(shard_ops.iter_mut())
                    .zip(windows.drain(..))
                    .map(|((shard, bufs), rows)| scope.spawn(move || run_shard(shard, bufs, rows)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
            })
        };

        // Lowest-indexed shard error wins; saturation sums per head.
        let mut head_sat = vec![MacSaturation::default(); num_heads];
        for (i, run) in shard_sats.into_iter().enumerate() {
            let (sats, start_ns, end_ns) = run?;
            if trace_on {
                // Shard threads are short-lived, so their intervals are
                // recorded from the calling thread (under the execute span)
                // rather than from per-shard trace lanes.
                tracer.record_interval("sim.shard", "sim", start_ns, end_ns, i as u64);
            }
            for (hs, s) in head_sat.iter_mut().zip(sats) {
                hs.merge(s);
            }
        }

        let mut outputs: Vec<ExecutionOutput> = (0..num_heads)
            .map(|h| self.drain_rows(lowered, d, &acc[h * n..(h + 1) * n], head_sat[h]))
            .collect();
        if profiling {
            // Per-shard occupancy/op-count gauges: busy time comes from the
            // shard's accumulated stage profile, occupancy is busy time
            // relative to the slowest shard (the layer's critical path).
            let shard_profiles: Vec<StageProfile> =
                shard_ops[..num_shards].iter_mut().map(|s| s.profile.take()).collect();
            let metrics = salo_trace::metrics();
            let max_busy = shard_profiles.iter().map(StageProfile::total_ns).max().unwrap_or(0);
            let mut aggregate = StageProfile::default();
            for (i, (profile, shard)) in shard_profiles.iter().zip(partition.shards()).enumerate() {
                aggregate.merge(profile);
                let busy = profile.total_ns();
                metrics.gauge(&format!("sim.shard.{i}.ops")).set(shard.ops().len() as i64);
                metrics.gauge(&format!("sim.shard.{i}.busy_ns")).set(busy as i64);
                let occupancy = (busy * 100).checked_div(max_busy).unwrap_or(0) as i64;
                metrics.gauge(&format!("sim.shard.{i}.occupancy_pct")).set(occupancy);
            }
            emit_stage_spans(tracer, &aggregate);
            if let Some(first_out) = outputs.first_mut() {
                first_out.report.stages = Some(aggregate);
            }
        }
        Ok(outputs)
    }

    /// Like [`execute`](Self::execute), but steps every array pass through
    /// the event-accurate [`SystolicArray`] (explicit systolic skew,
    /// rippled row sums) instead of the lowered program.
    ///
    /// The two paths are **bit-identical** — asserted in tests and
    /// proptests — because they perform the same fixed-point operations in
    /// the same order; this method exists to validate that claim and costs
    /// roughly an order of magnitude more host time.
    ///
    /// # Errors
    ///
    /// Same as [`execute`](Self::execute).
    pub fn execute_systolic(
        &self,
        plan: &ExecutionPlan,
        q: &Matrix<f32>,
        k: &Matrix<f32>,
        v: &Matrix<f32>,
        scale: f32,
    ) -> Result<ExecutionOutput, SimError> {
        let lowered = LoweredPlan::lower(plan);
        let scratch = &mut ExecScratch::new();
        let d = self.prepare(&lowered, q, k, v, scale, scratch)?;
        let mut sat = MacSaturation::default();
        for (i, pass) in plan.passes().iter().enumerate() {
            self.array_pass_systolic(plan, pass, d, scratch, &mut sat)?;
            self.run_ops(&lowered, lowered.pass_global_ops(i), d, scratch, &mut sat)?;
        }
        self.run_ops(&lowered, lowered.supplemental_ops(), d, scratch, &mut sat)?;
        Ok(self.drain(&lowered, d, scratch, sat))
    }

    /// Shape-checks the inputs and loads them into the scratch arenas.
    fn prepare(
        &self,
        lowered: &LoweredPlan,
        q: &Matrix<f32>,
        k: &Matrix<f32>,
        v: &Matrix<f32>,
        scale: f32,
        scratch: &mut ExecScratch,
    ) -> Result<usize, SimError> {
        let n = lowered.n();
        for m in [q, k, v] {
            if m.rows() != n || m.shape() != q.shape() {
                return Err(SimError::ShapeMismatch { plan_n: n, got: m.shape() });
            }
        }
        let d = q.cols();
        scratch.load(q, k, v, scale, d);
        // Pre-size the per-op buffers to the program's high-water mark so
        // the first ops never reallocate mid-pass.
        scratch.op.prepare(d, lowered.max_row_keys());
        Ok(d)
    }

    /// Executes a range of the lowered program: stages 1–5 per op, merged
    /// in place into the per-row accumulators. No allocation once the
    /// scratch has grown to the program's high-water mark.
    fn run_ops(
        &self,
        lowered: &LoweredPlan,
        range: std::ops::Range<usize>,
        d: usize,
        scratch: &mut ExecScratch,
        sat: &mut MacSaturation,
    ) -> Result<(), SimError> {
        let ExecScratch { qq, kq, vq, op: op_scratch, acc } = scratch;
        let kv = SliceKv { kq, vq };
        for op in &lowered.ops()[range] {
            let q_row = ExecScratch::row(qq, op.dest as usize, d);
            run_op(
                &self.exp,
                &self.recip,
                op.kind,
                lowered.op_keys(op),
                q_row,
                &kv,
                d,
                &mut *op_scratch,
                &mut acc[op.dest as usize],
                sat,
            )?;
        }
        Ok(())
    }

    /// One array pass via the event-accurate systolic model.
    fn array_pass_systolic(
        &self,
        plan: &ExecutionPlan,
        pass: &Pass,
        d: usize,
        scratch: &mut ExecScratch,
        sat: &mut MacSaturation,
    ) -> Result<(), SimError> {
        let comp = &plan.components()[pass.component];
        let chunk = &comp.offsets()[pass.chunk_start..pass.chunk_start + pass.chunk_len];
        let hw = self.config.hw;
        let array = SystolicArray::new(hw.pe_rows, hw.pe_cols, self.config.timing);

        // Resolve each cell's key index once (None = clipped/masked).
        let mut cell_keys = vec![None; pass.tile_len * hw.pe_cols];
        let mut row_query = vec![None; pass.tile_len];
        for u in 0..pass.tile_len {
            let p = pass.tile_start + u;
            let qi = comp.queries()[p];
            if plan.is_global(qi) {
                continue;
            }
            row_query[u] = Some(qi);
            for (vv, &o) in chunk.iter().enumerate() {
                if let Some(kj) = comp.key_at(p, o) {
                    if !plan.is_global(kj) {
                        cell_keys[u * hw.pe_cols + vv] = Some(kj);
                    }
                }
            }
        }
        let ExecScratch { qq, kq, vq, acc, .. } = scratch;
        let queries: Vec<Option<&[Fix8x4]>> =
            row_query.iter().map(|qi| qi.map(|qi| ExecScratch::row(qq, qi, d))).collect();
        let key_of = |u: usize, vv: usize| {
            cell_keys
                .get(u * hw.pe_cols + vv)
                .copied()
                .flatten()
                .map(|kj| ExecScratch::row(kq, kj, d))
        };
        let val_of = |u: usize, vv: usize| {
            cell_keys
                .get(u * hw.pe_cols + vv)
                .copied()
                .flatten()
                .map(|kj| ExecScratch::row(vq, kj, d))
        };
        let (parts, _trace) =
            array.run_pass(d, &queries, key_of, val_of, &self.exp, &self.recip, sat);
        for (u, part) in parts.into_iter().enumerate() {
            let (Some(qi), Some(part)) = (row_query.get(u).copied().flatten(), part) else {
                continue;
            };
            merge_partials_into(&mut acc[qi], &part, &self.recip)?;
        }
        Ok(())
    }

    /// Drains the weighted-sum modules into the output buffer and builds
    /// the report.
    fn drain(
        &self,
        lowered: &LoweredPlan,
        d: usize,
        scratch: &ExecScratch,
        sat: MacSaturation,
    ) -> ExecutionOutput {
        self.drain_rows(lowered, d, &scratch.acc, sat)
    }

    /// [`drain`](Self::drain) over an explicit accumulator-row slice —
    /// the form the partitioned executor uses, where one head's rows are
    /// a window of the flat all-heads accumulator.
    pub(crate) fn drain_rows(
        &self,
        lowered: &LoweredPlan,
        d: usize,
        acc: &[PartialRow],
        sat: MacSaturation,
    ) -> ExecutionOutput {
        let n = lowered.n();
        let mut raw = Matrix::filled(n, d, Fix16x8::ZERO);
        let mut weights = vec![0i64; n];
        for (i, part) in acc.iter().enumerate() {
            weights[i] = part.weight_q16;
            for (c, &o) in part.out_q19.iter().enumerate() {
                raw.set(i, c, Fix16x8::from_q19_acc(o));
            }
        }

        let timing = self.estimate_lowered(lowered, d, 1);
        let stats = lowered.stats();
        let scores = stats.active_cells + stats.global_col_scores + stats.global_row_scores;
        let macs = scores * (2 * d as u64 + 3);
        let lut_evals = scores + stats.passes as u64 * self.config.hw.pe_rows as u64;
        let energy = EnergyModel::new(&self.config).breakdown(
            timing.cycles.total,
            macs,
            timing.traffic.total_bytes(),
            lut_evals,
        );
        let output = raw.map(Fix16x8::to_f32);
        ExecutionOutput {
            raw,
            output,
            weights_q16: weights,
            report: ExecutionReport { timing, energy, saturation_events: sat.events, stages: None },
        }
    }

    /// The standard attention scale for a head dimension.
    #[must_use]
    pub fn default_scale(head_dim: usize) -> f32 {
        1.0 / (head_dim.max(1) as f32).sqrt()
    }
}

/// How the per-op executor reaches quantized K/V rows by sequence
/// position.
///
/// The prefill path reads from flat contiguous arenas ([`SliceKv`]); the
/// decode path reads through page translation
/// ([`PagedKv`](crate::decode) — row `j` lives at slot `j % page_rows` of
/// page `j / page_rows`). [`run_op`] is generic over the source and
/// monomorphizes per impl, so the contiguous hot path keeps its direct
/// slice indexing while both paths execute the **same** kernel body —
/// which is what keeps paged decode bit-identical to prefill.
pub(crate) trait KvSource {
    /// Key row `j` (`d` elements).
    fn k_row(&self, j: usize, d: usize) -> &[Fix8x4];
    /// Value row `j` (`d` elements).
    fn v_row(&self, j: usize, d: usize) -> &[Fix8x4];
}

/// Contiguous row-major K/V arenas — the prefill-side [`KvSource`].
pub(crate) struct SliceKv<'a> {
    pub kq: &'a [Fix8x4],
    pub vq: &'a [Fix8x4],
}

impl KvSource for SliceKv<'_> {
    #[inline]
    fn k_row(&self, j: usize, d: usize) -> &[Fix8x4] {
        ExecScratch::row(self.kq, j, d)
    }

    #[inline]
    fn v_row(&self, j: usize, d: usize) -> &[Fix8x4] {
        ExecScratch::row(self.vq, j, d)
    }
}

/// Stages 1–5 for one lowered op, merged into `acc`: output-stationary
/// dot products, exp/sum/reciprocal/normalize, weight-stationary value
/// accumulation (i32 fast path for provably short chains), weighted-sum
/// merge.
///
/// This is the **single** arithmetic body executed by both the prefill
/// pass (`run_ops`, K/V from the full-sequence scratch load) and the
/// decode step (`run_decode_ops`, K/V through page translation) — the
/// decode-vs-prefill bit-identity guarantee holds by construction
/// because there is exactly one copy of these kernels to diverge from.
#[allow(clippy::too_many_arguments)] // the op's full dataflow, spelled out
pub(crate) fn run_op<S: KvSource>(
    exp: &ExpLut,
    recip: &RecipUnit,
    kind: LoweredOpKind,
    keys: &[u32],
    q_row: &[Fix8x4],
    kv: &S,
    d: usize,
    bufs: &mut OpScratch,
    acc: &mut PartialRow,
    sat: &mut MacSaturation,
) -> Result<(), SimError> {
    let OpScratch { scores, exps, probs, part, out32, profile, profiling } = bufs;
    let mut timer = StageTimer::start(*profiling);
    match kind {
        LoweredOpKind::Row => {
            // Stage 1: output-stationary dot products.
            scores.clear();
            scores.extend(keys.iter().map(|&j| qk_dot(q_row, kv.k_row(j as usize, d), sat)));
            timer.lap(&mut profile.qk_dot_ns);
            // Stages 2-4: exp, row sum, reciprocal, normalize.
            let (weight, _) = fixed_softmax_parts_into(scores, exp, recip, exps, probs)?;
            timer.lap(&mut profile.exp_lut_ns);
            // Stage 5: weight-stationary value accumulation. Short chains
            // (every array-shaped op) accumulate in i32 — bit-identical,
            // twice the vector lanes.
            part.weight_q16 = weight;
            if keys.len() <= SV_I32_SAFE_KEYS {
                out32.fill(0);
                for (&j, &p) in keys.iter().zip(probs.iter()) {
                    sv_row_mac_i32(out32, p, kv.v_row(j as usize, d));
                }
                for (o, &o32) in part.out_q19.iter_mut().zip(out32.iter()) {
                    *o = i64::from(o32);
                }
            } else {
                part.out_q19.fill(0);
                for (&j, &p) in keys.iter().zip(probs.iter()) {
                    sv_row_mac(&mut part.out_q19, p, kv.v_row(j as usize, d));
                }
            }
            timer.lap(&mut profile.sv_mac_ns);
        }
        LoweredOpKind::SingleKey => {
            // A global PE column/row cell: weight `exp(s)`, output `v_g`
            // at probability one.
            let g = keys[0] as usize;
            let score = qk_dot(q_row, kv.k_row(g, d), sat);
            timer.lap(&mut profile.qk_dot_ns);
            part.weight_q16 = exp.eval_q8(score);
            timer.lap(&mut profile.exp_lut_ns);
            part.out_q19.fill(0);
            sv_row_mac(&mut part.out_q19, PROB_ONE, kv.v_row(g, d));
            timer.lap(&mut profile.sv_mac_ns);
        }
    }
    merge_partials_into(acc, part, recip)?;
    timer.lap(&mut profile.renorm_merge_ns);
    if *profiling {
        profile.ops += 1;
        profile.keys += keys.len() as u64;
    }
    Ok(())
}

/// Span names for the synthetic per-stage child spans, in datapath order
/// (matching [`StageProfile::stages`]).
const STAGE_SPAN_NAMES: [&str; 4] =
    ["sim.stage.qk_dot", "sim.stage.exp_lut", "sim.stage.renorm_merge", "sim.stage.sv_mac"];

/// Emits the accumulated stage costs as synthetic child spans laid
/// back-to-back so they end now, inside the caller's still-open execute
/// span. Their total is bounded by the execute span's wall time, so the
/// exported trace stays well-nested by construction.
fn emit_stage_spans(tracer: &Tracer, profile: &StageProfile) {
    if !tracer.enabled() || profile.is_empty() {
        return;
    }
    let end = salo_trace::now_ns();
    let mut t = end.saturating_sub(profile.total_ns());
    for (&name, (_, ns)) in STAGE_SPAN_NAMES.iter().zip(profile.stages()) {
        tracer.record_interval(name, "sim", t, t + ns, ns);
        t += ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_kernels::{fixed_sparse_attention, sparse_attention, FixedAttention, Qkv};
    use salo_patterns::{longformer, sliding_only, sparse_transformer, HybridPattern, Window};
    use salo_scheduler::HardwareMeta;

    fn accel(rows: usize, cols: usize) -> SpatialAccelerator {
        let config = AcceleratorConfig {
            hw: HardwareMeta::new(rows, cols, 1, 1).unwrap(),
            ..Default::default()
        };
        SpatialAccelerator::new(config)
    }

    #[test]
    fn bit_exact_against_golden_when_unsplit() {
        // No globals, window fits one chunk, tile holds each row once:
        // every row is one part, so simulator == golden kernel, bit for bit.
        let n = 24;
        let d = 8;
        let pattern = sliding_only(n, 7).unwrap();
        let qkv = Qkv::random(n, d, 42);
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(8, 8, 0, 0).unwrap()).unwrap();
        let sim = accel(8, 8);
        let scale = SpatialAccelerator::default_scale(d);
        let out = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        let golden =
            fixed_sparse_attention(&pattern, &qkv.q, &qkv.k, &qkv.v, &FixedAttention::new(d))
                .unwrap();
        assert_eq!(out.raw, golden.out, "bit-exact equivalence");
        assert_eq!(out.weights_q16, golden.weights_q16);
    }

    #[test]
    fn systolic_execution_bit_matches_lowered() {
        // The event-stepped systolic path and the lowered fast path
        // perform identical fixed-point operations in identical order.
        let n = 40;
        let d = 8;
        let pattern = longformer(n, 11, 2).unwrap();
        let qkv = Qkv::random(n, d, 77);
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(8, 8, 1, 1).unwrap()).unwrap();
        let sim = accel(8, 8);
        let scale = SpatialAccelerator::default_scale(d);
        let fast = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        let slow = sim.execute_systolic(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        assert_eq!(fast.raw, slow.raw, "bit-identical outputs");
        assert_eq!(fast.weights_q16, slow.weights_q16);
        assert_eq!(fast.report.saturation_events, slow.report.saturation_events);
    }

    #[test]
    fn scratch_reuse_is_bit_transparent() {
        // One scratch serving different shapes back to back produces the
        // same bits as a fresh scratch per execution.
        let sim = accel(8, 8);
        let mut scratch = ExecScratch::new();
        for (n, d, w, seed) in [(40usize, 8usize, 11usize, 1u64), (24, 4, 7, 2), (40, 8, 11, 3)] {
            let pattern = longformer(n, w, 1).unwrap();
            let plan =
                ExecutionPlan::build(&pattern, HardwareMeta::new(8, 8, 1, 1).unwrap()).unwrap();
            let lowered = LoweredPlan::lower(&plan);
            let qkv = Qkv::random(n, d, seed);
            let scale = SpatialAccelerator::default_scale(d);
            let reused =
                sim.execute_lowered(&lowered, &qkv.q, &qkv.k, &qkv.v, scale, &mut scratch).unwrap();
            let fresh = sim
                .execute_lowered(&lowered, &qkv.q, &qkv.k, &qkv.v, scale, &mut ExecScratch::new())
                .unwrap();
            assert_eq!(reused.raw, fresh.raw);
            assert_eq!(reused.weights_q16, fresh.weights_q16);
            assert_eq!(reused.report.saturation_events, fresh.report.saturation_events);
        }
    }

    #[test]
    fn profiling_reports_stages_and_stays_bit_identical() {
        let n = 40;
        let d = 8;
        let pattern = longformer(n, 11, 2).unwrap();
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(8, 8, 1, 1).unwrap()).unwrap();
        let lowered = LoweredPlan::lower(&plan);
        let qkv = Qkv::random(n, d, 91);
        let sim = accel(8, 8);
        let scale = SpatialAccelerator::default_scale(d);

        let mut plain = ExecScratch::new();
        let mut profiled = ExecScratch::new();
        profiled.set_profiling(true);
        let a = sim.execute_lowered(&lowered, &qkv.q, &qkv.k, &qkv.v, scale, &mut plain).unwrap();
        let b =
            sim.execute_lowered(&lowered, &qkv.q, &qkv.k, &qkv.v, scale, &mut profiled).unwrap();
        assert_eq!(a.raw, b.raw, "profiling must not perturb outputs");
        assert!(a.report.stages.is_none(), "no profile unless requested");
        let stages = b.report.stages.expect("profiled run reports stages");
        assert_eq!(stages.ops, lowered.ops().len() as u64);
        assert!(stages.keys > 0);

        // Partitioned path: the layer aggregate lands on the first head.
        let heads: Vec<Qkv> = (0..3).map(|s| Qkv::random(n, d, 100 + s)).collect();
        let mut hs = HeadsScratch::new();
        hs.set_profiling(true);
        let outs = sim.execute_heads_lowered(&lowered, &heads, scale, 2, &mut hs).unwrap();
        let agg = outs[0].report.stages.expect("aggregate profile on head 0");
        assert_eq!(agg.ops, 3 * lowered.ops().len() as u64);
        assert!(outs[1].report.stages.is_none());
        // Per-shard gauges land in the global metrics registry.
        let ops0 = salo_trace::metrics().gauge("sim.shard.0.ops").get();
        assert!(ops0 > 0);
    }

    #[test]
    fn cloned_accelerators_share_lookup_tables() {
        let sim = accel(8, 8);
        let clone = sim.clone();
        let (exp_a, recip_a) = sim.shared_tables();
        let (exp_b, recip_b) = clone.shared_tables();
        assert!(Arc::ptr_eq(exp_a, exp_b), "ExpLut shared across clones");
        assert!(Arc::ptr_eq(recip_a, recip_b), "RecipUnit shared across clones");
    }

    #[test]
    fn close_to_golden_under_window_splitting() {
        // Window wider than the array: rows split into parts and merge in
        // the WSM; agreement is within merge rounding.
        let n = 40;
        let d = 8;
        let pattern = sliding_only(n, 21).unwrap();
        let qkv = Qkv::random(n, d, 7);
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(8, 8, 0, 0).unwrap()).unwrap();
        let sim = accel(8, 8);
        let scale = SpatialAccelerator::default_scale(d);
        let out = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        let golden =
            fixed_sparse_attention(&pattern, &qkv.q, &qkv.k, &qkv.v, &FixedAttention::new(d))
                .unwrap();
        let diff = out.output.max_abs_diff(&golden.to_f32());
        assert!(diff < 0.05, "split-vs-monolithic diff {diff}");
    }

    #[test]
    fn matches_f32_reference_with_globals() {
        let n = 32;
        let d = 8;
        let pattern = longformer(n, 9, 2).unwrap();
        let qkv = Qkv::random(n, d, 11);
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(8, 8, 1, 1).unwrap()).unwrap();
        let sim = accel(8, 8);
        let scale = SpatialAccelerator::default_scale(d);
        let out = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        let exact = sparse_attention(&pattern, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        let diff = out.output.max_abs_diff(&exact);
        assert!(diff < 0.3, "diff vs f32 reference {diff}");
        assert_eq!(out.report.saturation_events, 0);
    }

    #[test]
    fn dilated_pattern_executes_correctly() {
        let n = 36;
        let d = 4;
        let pattern = HybridPattern::builder(n)
            .window(Window::dilated(-9, 9, 3).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let qkv = Qkv::random(n, d, 23);
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(4, 4, 1, 1).unwrap()).unwrap();
        let sim = accel(4, 4);
        let scale = SpatialAccelerator::default_scale(d);
        let out = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        let exact = sparse_attention(&pattern, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        assert!(out.output.max_abs_diff(&exact) < 0.3);
    }

    #[test]
    fn strided_preset_end_to_end() {
        let n = 30;
        let d = 6;
        let pattern = sparse_transformer(n, 3, 4).unwrap();
        let qkv = Qkv::random(n, d, 5);
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(6, 6, 1, 1).unwrap()).unwrap();
        let sim = accel(6, 6);
        let scale = SpatialAccelerator::default_scale(d);
        let out = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        let exact = sparse_attention(&pattern, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        assert!(out.output.max_abs_diff(&exact) < 0.3);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let pattern = sliding_only(16, 3).unwrap();
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(4, 4, 0, 0).unwrap()).unwrap();
        let sim = accel(4, 4);
        let good = Matrix::zeros(16, 4);
        let bad = Matrix::zeros(12, 4);
        assert!(matches!(
            sim.execute(&plan, &bad, &good, &good, 1.0),
            Err(SimError::ShapeMismatch { plan_n: 16, .. })
        ));
    }

    #[test]
    fn estimate_reports_consistent_figures() {
        let pattern = longformer(256, 32, 1).unwrap();
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::default()).unwrap();
        let sim = SpatialAccelerator::default_instance();
        let t = sim.estimate(&plan, 64, 12);
        assert!(t.cycles.total > 0);
        assert!((t.time_s - t.cycles.total as f64 * 1e-9).abs() < 1e-15);
        assert!(t.utilization.occupancy > 0.0 && t.utilization.occupancy <= 1.0);
        assert!(t.utilization.mac_utilization > 0.0 && t.utilization.mac_utilization <= 1.0);
        assert!(t.energy_j > 0.0);
        // 12 heads = 12x one head.
        let one = sim.estimate(&plan, 64, 1);
        assert_eq!(t.cycles.total, 12 * one.cycles.per_head);
        // The lowered estimate is the same report, without the traversal.
        let lowered = LoweredPlan::lower(&plan);
        assert_eq!(t, sim.estimate_lowered(&lowered, 64, 12));
    }

    #[test]
    fn longformer_mac_utilization_above_paper_threshold() {
        // The §6.3 claim: >75 % utilization on hybrid patterns (d = 64).
        let pattern = longformer(2048, 256, 1).unwrap();
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::default()).unwrap();
        let sim = SpatialAccelerator::default_instance();
        let t = sim.estimate(&plan, 64, 1);
        assert!(
            t.utilization.mac_utilization > 0.75,
            "utilization {}",
            t.utilization.mac_utilization
        );
    }

    #[test]
    fn weights_zero_only_for_uncovered_rows() {
        let pattern = sliding_only(16, 5).unwrap();
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(4, 4, 0, 0).unwrap()).unwrap();
        let sim = accel(4, 4);
        let qkv = Qkv::random(16, 4, 3);
        let out = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, 0.5).unwrap();
        assert!(out.weights_q16.iter().all(|&w| w > 0));
    }
}
