//! Functional + timing execution of plans on the simulated accelerator.

use salo_fixed::{
    fixed_softmax_parts, merge_partials, qk_dot, quantize, quantize_with_scale, sv_mac, ExpLut,
    Fix16x8, Fix8x4, MacSaturation, PartialRow, RecipUnit, PROB_ONE,
};
use salo_kernels::Matrix;
use salo_scheduler::{ExecutionPlan, Pass, SupplementalKind};

use crate::systolic::SystolicArray;
use crate::{
    AcceleratorConfig, CycleModel, EnergyModel, ExecutionReport, SimError, TimingReport,
    TrafficReport, UtilizationReport,
};

/// The simulated SALO accelerator instance.
///
/// Construction builds the exponential and reciprocal lookup tables from
/// the configuration; the instance is immutable and reusable across plans.
#[derive(Debug, Clone)]
pub struct SpatialAccelerator {
    config: AcceleratorConfig,
    exp: ExpLut,
    recip: RecipUnit,
}

/// The result of a functional execution.
#[derive(Debug, Clone)]
pub struct ExecutionOutput {
    /// Attention output in the 16-bit accelerator format.
    pub raw: Matrix<Fix16x8>,
    /// The output dequantized to `f32`.
    pub output: Matrix<f32>,
    /// Final per-row softmax weights (Q.16) accumulated by the
    /// weighted-sum modules.
    pub weights_q16: Vec<i64>,
    /// Timing, energy, utilization and saturation report.
    pub report: ExecutionReport,
}

/// Quantized copies of one head's inputs.
struct QuantizedInputs {
    qq: Vec<Vec<Fix8x4>>,
    kq: Vec<Vec<Fix8x4>>,
    vq: Vec<Vec<Fix8x4>>,
}

impl SpatialAccelerator {
    /// Builds an accelerator from a configuration.
    #[must_use]
    pub fn new(config: AcceleratorConfig) -> Self {
        let exp = ExpLut::new(config.exp_segments.max(1));
        let recip = RecipUnit::new(config.recip_entries.max(1));
        Self { config, exp, recip }
    }

    /// The Table 1 instance.
    #[must_use]
    pub fn default_instance() -> Self {
        Self::new(AcceleratorConfig::default())
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Timing-only estimate for executing `plan` with `num_heads` heads of
    /// dimension `head_dim` (heads run back to back; the plan is per-head).
    #[must_use]
    pub fn estimate(
        &self,
        plan: &ExecutionPlan,
        head_dim: usize,
        num_heads: usize,
    ) -> TimingReport {
        let stats = plan.stats();
        let model = CycleModel::new(&self.config);
        let cycles = model.plan_cycles(
            stats.passes as u64,
            stats.supplemental_passes as u64,
            head_dim,
            num_heads,
        );
        let time_s = cycles.total as f64 * self.config.cycle_time_s();
        let busy = model.pe_busy_cycles(head_dim);
        let array_cycle_slots = self.config.hw.array_pes() as u64 * cycles.per_head.max(1);
        let mac_utilization = (stats.active_cells * busy) as f64 / array_cycle_slots as f64;
        TimingReport {
            cycles,
            time_s,
            energy_j: EnergyModel::new(&self.config).lumped_energy_j(cycles.total),
            utilization: UtilizationReport {
                occupancy: stats.occupancy,
                mac_utilization: mac_utilization.min(1.0),
            },
            traffic: TrafficReport::from_plan(plan, head_dim),
        }
    }

    /// Functionally executes one head: quantizes the inputs, runs every
    /// pass through the five-stage fixed-point datapath, merges window
    /// splits and global contributions in the weighted-sum modules, and
    /// returns 16-bit outputs with a full report.
    ///
    /// `scale` is folded into the query quantization; pass
    /// `1/sqrt(head_dim)` for standard attention (see
    /// [`default_scale`](Self::default_scale)).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ShapeMismatch`] if the matrices disagree with
    /// the plan, or a fixed-point error on numeric degeneracy.
    pub fn execute(
        &self,
        plan: &ExecutionPlan,
        q: &Matrix<f32>,
        k: &Matrix<f32>,
        v: &Matrix<f32>,
        scale: f32,
    ) -> Result<ExecutionOutput, SimError> {
        self.execute_inner(plan, q, k, v, scale, false)
    }

    /// Like [`execute`](Self::execute), but steps every array pass through
    /// the event-accurate [`SystolicArray`] (explicit systolic skew,
    /// rippled row sums) instead of the vectorized datapath.
    ///
    /// The two paths are **bit-identical** — asserted in tests — because
    /// they perform the same fixed-point operations in the same order;
    /// this method exists to validate that claim and costs roughly an
    /// order of magnitude more host time.
    ///
    /// # Errors
    ///
    /// Same as [`execute`](Self::execute).
    pub fn execute_systolic(
        &self,
        plan: &ExecutionPlan,
        q: &Matrix<f32>,
        k: &Matrix<f32>,
        v: &Matrix<f32>,
        scale: f32,
    ) -> Result<ExecutionOutput, SimError> {
        self.execute_inner(plan, q, k, v, scale, true)
    }

    fn execute_inner(
        &self,
        plan: &ExecutionPlan,
        q: &Matrix<f32>,
        k: &Matrix<f32>,
        v: &Matrix<f32>,
        scale: f32,
        event_accurate: bool,
    ) -> Result<ExecutionOutput, SimError> {
        let n = plan.n();
        for m in [q, k, v] {
            if m.rows() != n || m.shape() != q.shape() {
                return Err(SimError::ShapeMismatch { plan_n: n, got: m.shape() });
            }
        }
        let d = q.cols();

        // Load-time quantization (scale folded into Q).
        let inputs = QuantizedInputs {
            qq: (0..n).map(|i| quantize_with_scale(q.row(i), scale)).collect(),
            kq: (0..n).map(|i| quantize(k.row(i))).collect(),
            vq: (0..n).map(|i| quantize(v.row(i))).collect(),
        };

        let mut acc: Vec<PartialRow> = (0..n).map(|_| PartialRow::empty(d)).collect();
        let mut sat = MacSaturation::default();

        for pass in plan.passes() {
            if event_accurate {
                self.array_pass_systolic(plan, pass, &inputs, d, &mut acc, &mut sat)?;
            } else {
                self.array_pass_vectorized(plan, pass, &inputs, d, &mut acc, &mut sat)?;
            }
            self.global_duties(plan, pass, &inputs, d, &mut acc, &mut sat)?;
        }

        // Supplemental global-unit passes.
        for sup in plan.supplemental() {
            match sup.kind {
                SupplementalKind::GlobalRow { token, start, end } => {
                    let keys: Vec<usize> = (start..end).collect();
                    let part = self.row_part(&inputs.qq[token], &keys, &inputs, d, &mut sat)?;
                    acc[token] = merge_partials(&acc[token], &part, &self.recip)?;
                }
                SupplementalKind::GlobalCol { token, start, end } => {
                    for (offset, slot) in acc[start..end].iter_mut().enumerate() {
                        let qi = start + offset;
                        let part =
                            self.single_key_part(&inputs.qq[qi], token, &inputs, d, &mut sat);
                        *slot = merge_partials(slot, &part, &self.recip)?;
                    }
                }
            }
        }

        // Drain the weighted-sum modules into the output buffer.
        let mut raw = Matrix::filled(n, d, Fix16x8::ZERO);
        let mut weights = vec![0i64; n];
        for (i, part) in acc.iter().enumerate() {
            weights[i] = part.weight_q16;
            for (c, &o) in part.out_q19.iter().enumerate() {
                raw.set(i, c, Fix16x8::from_q19_acc(o));
            }
        }

        let timing = self.estimate(plan, d, 1);
        let stats = plan.stats();
        let scores = stats.active_cells + stats.global_col_scores + stats.global_row_scores;
        let macs = scores * (2 * d as u64 + 3);
        let lut_evals = scores + stats.passes as u64 * self.config.hw.pe_rows as u64;
        let energy = EnergyModel::new(&self.config).breakdown(
            timing.cycles.total,
            macs,
            timing.traffic.total_bytes(),
            lut_evals,
        );
        let output = raw.map(Fix16x8::to_f32);
        Ok(ExecutionOutput {
            raw,
            output,
            weights_q16: weights,
            report: ExecutionReport { timing, energy, saturation_events: sat.events },
        })
    }

    /// One array pass via the vectorized datapath.
    fn array_pass_vectorized(
        &self,
        plan: &ExecutionPlan,
        pass: &Pass,
        inputs: &QuantizedInputs,
        d: usize,
        acc: &mut [PartialRow],
        sat: &mut MacSaturation,
    ) -> Result<(), SimError> {
        let comp = &plan.components()[pass.component];
        let chunk = &comp.offsets()[pass.chunk_start..pass.chunk_start + pass.chunk_len];
        for u in 0..pass.tile_len {
            let p = pass.tile_start + u;
            let qi = comp.queries()[p];
            if plan.is_global(qi) {
                continue;
            }
            let mut keys = Vec::with_capacity(chunk.len());
            for &o in chunk {
                if let Some(kj) = comp.key_at(p, o) {
                    if !plan.is_global(kj) {
                        keys.push(kj);
                    }
                }
            }
            if keys.is_empty() {
                continue;
            }
            let part = self.row_part(&inputs.qq[qi], &keys, inputs, d, sat)?;
            acc[qi] = merge_partials(&acc[qi], &part, &self.recip)?;
        }
        Ok(())
    }

    /// One array pass via the event-accurate systolic model.
    fn array_pass_systolic(
        &self,
        plan: &ExecutionPlan,
        pass: &Pass,
        inputs: &QuantizedInputs,
        d: usize,
        acc: &mut [PartialRow],
        sat: &mut MacSaturation,
    ) -> Result<(), SimError> {
        let comp = &plan.components()[pass.component];
        let chunk = &comp.offsets()[pass.chunk_start..pass.chunk_start + pass.chunk_len];
        let hw = self.config.hw;
        let array = SystolicArray::new(hw.pe_rows, hw.pe_cols, self.config.timing);

        // Resolve each cell's key index once (None = clipped/masked).
        let mut cell_keys = vec![None; pass.tile_len * hw.pe_cols];
        let mut row_query = vec![None; pass.tile_len];
        for u in 0..pass.tile_len {
            let p = pass.tile_start + u;
            let qi = comp.queries()[p];
            if plan.is_global(qi) {
                continue;
            }
            row_query[u] = Some(qi);
            for (vv, &o) in chunk.iter().enumerate() {
                if let Some(kj) = comp.key_at(p, o) {
                    if !plan.is_global(kj) {
                        cell_keys[u * hw.pe_cols + vv] = Some(kj);
                    }
                }
            }
        }
        let queries: Vec<Option<&[Fix8x4]>> =
            row_query.iter().map(|qi| qi.map(|qi| inputs.qq[qi].as_slice())).collect();
        let key_of = |u: usize, vv: usize| {
            cell_keys.get(u * hw.pe_cols + vv).copied().flatten().map(|kj| inputs.kq[kj].as_slice())
        };
        let val_of = |u: usize, vv: usize| {
            cell_keys.get(u * hw.pe_cols + vv).copied().flatten().map(|kj| inputs.vq[kj].as_slice())
        };
        let (parts, _trace) =
            array.run_pass(d, &queries, key_of, val_of, &self.exp, &self.recip, sat);
        for (u, part) in parts.into_iter().enumerate() {
            let (Some(qi), Some(part)) = (row_query.get(u).copied().flatten(), part) else {
                continue;
            };
            acc[qi] = merge_partials(&acc[qi], &part, &self.recip)?;
        }
        Ok(())
    }

    /// Global PE row/column duties of one pass.
    fn global_duties(
        &self,
        _plan: &ExecutionPlan,
        pass: &Pass,
        inputs: &QuantizedInputs,
        d: usize,
        acc: &mut [PartialRow],
        sat: &mut MacSaturation,
    ) -> Result<(), SimError> {
        // Global PE column: tile queries against one global token's key.
        for duty in &pass.global_col {
            let g = duty.token;
            for &qi in &duty.fresh_queries {
                let qi = qi as usize;
                let part = self.single_key_part(&inputs.qq[qi], g, inputs, d, sat);
                acc[qi] = merge_partials(&acc[qi], &part, &self.recip)?;
            }
        }
        // Global PE row: one global token's query against streamed keys.
        for duty in &pass.global_row {
            let g = duty.token;
            let keys: Vec<usize> = duty.fresh_keys.iter().map(|&kj| kj as usize).collect();
            if keys.is_empty() {
                continue;
            }
            let part = self.row_part(&inputs.qq[g], &keys, inputs, d, sat)?;
            acc[g] = merge_partials(&acc[g], &part, &self.recip)?;
        }
        Ok(())
    }

    /// The standard attention scale for a head dimension.
    #[must_use]
    pub fn default_scale(head_dim: usize) -> f32 {
        1.0 / (head_dim.max(1) as f32).sqrt()
    }

    /// Stages 1-5 for one PE row over an explicit key list.
    fn row_part(
        &self,
        q_row: &[Fix8x4],
        keys: &[usize],
        inputs: &QuantizedInputs,
        d: usize,
        sat: &mut MacSaturation,
    ) -> Result<PartialRow, SimError> {
        // Stage 1: output-stationary dot products.
        let scores: Vec<i32> = keys.iter().map(|&j| qk_dot(q_row, &inputs.kq[j], sat)).collect();
        // Stages 2-4: exp, row sum, reciprocal, normalize.
        let (probs, weight, _) = fixed_softmax_parts(&scores, &self.exp, &self.recip)?;
        // Stage 5: weight-stationary value accumulation.
        let mut out = vec![0i64; d];
        for (&j, &p) in keys.iter().zip(&probs) {
            for (o, &ve) in out.iter_mut().zip(&inputs.vq[j]) {
                *o = sv_mac(*o, p, ve, sat);
            }
        }
        Ok(PartialRow { weight_q16: weight, out_q19: out })
    }

    /// A single-key part (global PE column cell): weight `exp(s)`, output
    /// `v_g` at probability one.
    fn single_key_part(
        &self,
        q_row: &[Fix8x4],
        g: usize,
        inputs: &QuantizedInputs,
        d: usize,
        sat: &mut MacSaturation,
    ) -> PartialRow {
        let score = qk_dot(q_row, &inputs.kq[g], sat);
        let weight = self.exp.eval_q8(score);
        let mut out = vec![0i64; d];
        for (o, &ve) in out.iter_mut().zip(&inputs.vq[g]) {
            *o = sv_mac(*o, PROB_ONE, ve, sat);
        }
        PartialRow { weight_q16: weight, out_q19: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_kernels::{fixed_sparse_attention, sparse_attention, FixedAttention, Qkv};
    use salo_patterns::{longformer, sliding_only, sparse_transformer, HybridPattern, Window};
    use salo_scheduler::HardwareMeta;

    fn accel(rows: usize, cols: usize) -> SpatialAccelerator {
        let config = AcceleratorConfig {
            hw: HardwareMeta::new(rows, cols, 1, 1).unwrap(),
            ..Default::default()
        };
        SpatialAccelerator::new(config)
    }

    #[test]
    fn bit_exact_against_golden_when_unsplit() {
        // No globals, window fits one chunk, tile holds each row once:
        // every row is one part, so simulator == golden kernel, bit for bit.
        let n = 24;
        let d = 8;
        let pattern = sliding_only(n, 7).unwrap();
        let qkv = Qkv::random(n, d, 42);
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(8, 8, 0, 0).unwrap()).unwrap();
        let sim = accel(8, 8);
        let scale = SpatialAccelerator::default_scale(d);
        let out = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        let golden =
            fixed_sparse_attention(&pattern, &qkv.q, &qkv.k, &qkv.v, &FixedAttention::new(d))
                .unwrap();
        assert_eq!(out.raw, golden.out, "bit-exact equivalence");
        assert_eq!(out.weights_q16, golden.weights_q16);
    }

    #[test]
    fn systolic_execution_bit_matches_vectorized() {
        // The event-stepped systolic path and the vectorized path perform
        // identical fixed-point operations in identical order.
        let n = 40;
        let d = 8;
        let pattern = longformer(n, 11, 2).unwrap();
        let qkv = Qkv::random(n, d, 77);
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(8, 8, 1, 1).unwrap()).unwrap();
        let sim = accel(8, 8);
        let scale = SpatialAccelerator::default_scale(d);
        let fast = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        let slow = sim.execute_systolic(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        assert_eq!(fast.raw, slow.raw, "bit-identical outputs");
        assert_eq!(fast.weights_q16, slow.weights_q16);
        assert_eq!(fast.report.saturation_events, slow.report.saturation_events);
    }

    #[test]
    fn close_to_golden_under_window_splitting() {
        // Window wider than the array: rows split into parts and merge in
        // the WSM; agreement is within merge rounding.
        let n = 40;
        let d = 8;
        let pattern = sliding_only(n, 21).unwrap();
        let qkv = Qkv::random(n, d, 7);
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(8, 8, 0, 0).unwrap()).unwrap();
        let sim = accel(8, 8);
        let scale = SpatialAccelerator::default_scale(d);
        let out = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        let golden =
            fixed_sparse_attention(&pattern, &qkv.q, &qkv.k, &qkv.v, &FixedAttention::new(d))
                .unwrap();
        let diff = out.output.max_abs_diff(&golden.to_f32());
        assert!(diff < 0.05, "split-vs-monolithic diff {diff}");
    }

    #[test]
    fn matches_f32_reference_with_globals() {
        let n = 32;
        let d = 8;
        let pattern = longformer(n, 9, 2).unwrap();
        let qkv = Qkv::random(n, d, 11);
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(8, 8, 1, 1).unwrap()).unwrap();
        let sim = accel(8, 8);
        let scale = SpatialAccelerator::default_scale(d);
        let out = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        let exact = sparse_attention(&pattern, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        let diff = out.output.max_abs_diff(&exact);
        assert!(diff < 0.3, "diff vs f32 reference {diff}");
        assert_eq!(out.report.saturation_events, 0);
    }

    #[test]
    fn dilated_pattern_executes_correctly() {
        let n = 36;
        let d = 4;
        let pattern = HybridPattern::builder(n)
            .window(Window::dilated(-9, 9, 3).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        let qkv = Qkv::random(n, d, 23);
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(4, 4, 1, 1).unwrap()).unwrap();
        let sim = accel(4, 4);
        let scale = SpatialAccelerator::default_scale(d);
        let out = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        let exact = sparse_attention(&pattern, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        assert!(out.output.max_abs_diff(&exact) < 0.3);
    }

    #[test]
    fn strided_preset_end_to_end() {
        let n = 30;
        let d = 6;
        let pattern = sparse_transformer(n, 3, 4).unwrap();
        let qkv = Qkv::random(n, d, 5);
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(6, 6, 1, 1).unwrap()).unwrap();
        let sim = accel(6, 6);
        let scale = SpatialAccelerator::default_scale(d);
        let out = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        let exact = sparse_attention(&pattern, &qkv.q, &qkv.k, &qkv.v, scale).unwrap();
        assert!(out.output.max_abs_diff(&exact) < 0.3);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let pattern = sliding_only(16, 3).unwrap();
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(4, 4, 0, 0).unwrap()).unwrap();
        let sim = accel(4, 4);
        let good = Matrix::zeros(16, 4);
        let bad = Matrix::zeros(12, 4);
        assert!(matches!(
            sim.execute(&plan, &bad, &good, &good, 1.0),
            Err(SimError::ShapeMismatch { plan_n: 16, .. })
        ));
    }

    #[test]
    fn estimate_reports_consistent_figures() {
        let pattern = longformer(256, 32, 1).unwrap();
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::default()).unwrap();
        let sim = SpatialAccelerator::default_instance();
        let t = sim.estimate(&plan, 64, 12);
        assert!(t.cycles.total > 0);
        assert!((t.time_s - t.cycles.total as f64 * 1e-9).abs() < 1e-15);
        assert!(t.utilization.occupancy > 0.0 && t.utilization.occupancy <= 1.0);
        assert!(t.utilization.mac_utilization > 0.0 && t.utilization.mac_utilization <= 1.0);
        assert!(t.energy_j > 0.0);
        // 12 heads = 12x one head.
        let one = sim.estimate(&plan, 64, 1);
        assert_eq!(t.cycles.total, 12 * one.cycles.per_head);
    }

    #[test]
    fn longformer_mac_utilization_above_paper_threshold() {
        // The §6.3 claim: >75 % utilization on hybrid patterns (d = 64).
        let pattern = longformer(2048, 256, 1).unwrap();
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::default()).unwrap();
        let sim = SpatialAccelerator::default_instance();
        let t = sim.estimate(&plan, 64, 1);
        assert!(
            t.utilization.mac_utilization > 0.75,
            "utilization {}",
            t.utilization.mac_utilization
        );
    }

    #[test]
    fn weights_zero_only_for_uncovered_rows() {
        let pattern = sliding_only(16, 5).unwrap();
        let plan = ExecutionPlan::build(&pattern, HardwareMeta::new(4, 4, 0, 0).unwrap()).unwrap();
        let sim = accel(4, 4);
        let qkv = Qkv::random(16, 4, 3);
        let out = sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, 0.5).unwrap();
        assert!(out.weights_q16.iter().all(|&w| w > 0));
    }
}
