//! Data scheduler throughput: plan construction for the paper's workloads
//! (E9 — the Fig. 4 machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use salo_models::{longformer_base_4096, vil_stage1, vil_stage2};
use salo_patterns::sparse_transformer;
use salo_scheduler::{ExecutionPlan, HardwareMeta};
use std::hint::black_box;

fn bench_plan_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_build");
    group.sample_size(10);
    let workloads = [
        ("longformer_4096", longformer_base_4096().pattern),
        ("vil_stage1", vil_stage1().pattern),
        ("vil_stage2", vil_stage2().pattern),
        ("sparse_transformer_2048", sparse_transformer(2048, 64, 16).expect("pattern")),
    ];
    for (name, pattern) in workloads {
        group.bench_with_input(BenchmarkId::from_parameter(name), &pattern, |b, p| {
            b.iter(|| black_box(ExecutionPlan::build(p, HardwareMeta::default()).expect("plan")))
        });
    }
    group.finish();
}

fn bench_plan_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_stats");
    group.sample_size(10);
    let plan = ExecutionPlan::build(&longformer_base_4096().pattern, HardwareMeta::default())
        .expect("plan");
    group.bench_function("longformer_4096", |b| b.iter(|| black_box(plan.stats())));
    group.finish();
}

criterion_group!(benches, bench_plan_build, bench_plan_stats);
criterion_main!(benches);
