//! E4 bench: the full comparison pipeline (compile + estimate + baseline
//! models) for the three Fig. 7 workloads, plus functional simulation on
//! a scaled-down Longformer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use salo_core::{compare_workload, Salo};
use salo_kernels::Qkv;
use salo_models::{longformer_base_4096, longformer_layer, vil_stage1, vil_stage2};
use std::hint::black_box;

fn bench_figure7_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7_pipeline");
    group.sample_size(10);
    let salo = Salo::default_config();
    let cpu = salo_baselines::cpu_xeon_e5_2630_v3();
    let gpu = salo_baselines::gtx_1080ti();
    for workload in [longformer_base_4096(), vil_stage1(), vil_stage2()] {
        group.bench_with_input(BenchmarkId::from_parameter(&workload.name), &workload, |b, w| {
            b.iter(|| black_box(compare_workload(&salo, w, &cpu, &gpu).expect("compare")))
        });
    }
    group.finish();
}

fn bench_functional_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_simulation");
    group.sample_size(10);
    let salo = Salo::default_config();
    // A 1/8-scale Longformer head: n=512, w=64.
    let workload = longformer_layer(512, 64, 64, 1).expect("workload");
    let compiled = salo.compile(&workload.pattern, &workload.shape).expect("plan");
    let head = Qkv::random(512, 64, 3);
    let scale = salo_sim::SpatialAccelerator::default_scale(64);
    let mut scratch = salo_sim::ExecScratch::new();
    group.bench_function("longformer_scaled_n512_one_head", |b| {
        b.iter(|| {
            let out = salo
                .accelerator()
                .execute_lowered(&compiled.lowered, &head.q, &head.k, &head.v, scale, &mut scratch)
                .expect("execute");
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure7_pipeline, bench_functional_execution);
criterion_main!(benches);
