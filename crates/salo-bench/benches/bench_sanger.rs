//! E6 bench: SALO vs Sanger latency-model evaluation across the paper's
//! sparsity range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use salo_baselines::SangerModel;
use salo_core::Salo;
use salo_models::longformer_layer;
use std::hint::black_box;

fn bench_sanger_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("sanger_model");
    let sanger = SangerModel::default();
    for (label, nnz) in [("density_0.05", 838_860u64), ("density_0.30", 5_033_164)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &nnz, |b, &nnz| {
            b.iter(|| black_box(sanger.latency_s(4096, nnz, 64, 12)))
        });
    }
    group.finish();
}

fn bench_salo_vs_sanger_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("salo_vs_sanger_sweep");
    group.sample_size(10);
    let salo = Salo::default_config();
    let sanger = SangerModel::default();
    group.bench_function("full_sweep_6_points", |b| {
        b.iter(|| {
            let mut ratios = Vec::new();
            for window in [128usize, 256, 512, 768, 1024, 1228] {
                let w = longformer_layer(4096, window, 768, 0).expect("workload");
                let compiled = salo.compile(&w.pattern, &w.shape).expect("plan");
                let t_salo = salo.estimate(&compiled).time_s;
                let t_sanger = sanger.latency_s(4096, w.nnz(), 64, 12);
                ratios.push(t_sanger / t_salo);
            }
            black_box(ratios)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sanger_model, bench_salo_vs_sanger_sweep);
criterion_main!(benches);
