//! Streaming-decode hot paths: per-token step cost against the persistent
//! K/V arenas, and the one-time step-program lowering.
//!
//! The step bench is the acceptance figure of the decode-datapath PR: one
//! token's work is O(active keys at that step), not O(plan) — a full
//! re-execution of the prefill per generated token would be ~n times
//! slower at paper scale. `bench_trajectory` records the same per-token
//! cost in `BENCH_exec.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use salo_core::Salo;
use salo_kernels::Qkv;
use salo_patterns::{HybridPattern, Window};
use salo_sim::{DecodePlan, LoweredPlan};
use std::hint::black_box;

/// Causal sliding window of `w` with an attention-sink global — the
/// serving shape of Salca/MiniCPM-style hybrid sparse decoding.
fn sink_pattern(n: usize, w: usize) -> HybridPattern {
    HybridPattern::builder(n)
        .window(Window::causal(w).expect("window"))
        .global_token(0)
        .build()
        .expect("pattern")
}

fn bench_decode_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_step");
    group.sample_size(10);
    let salo = Salo::default_config();
    for (name, n, w, d) in
        [("longformer-2048-w256", 2048usize, 256usize, 64usize), ("chat-512-w128", 512, 128, 64)]
    {
        let pattern = sink_pattern(n, w);
        let qkv = Qkv::random(n, d, 42);
        let mut session = salo.decode_session(&pattern, d).expect("session");
        session.prime_rows(&qkv, 0..session.min_step()).expect("prime");
        let mut t = session.min_step();
        group.bench_with_input(BenchmarkId::from_parameter(name), &qkv, |b, qkv| {
            b.iter(|| {
                if t >= session.capacity() {
                    session.reset();
                    session.prime_rows(qkv, 0..session.min_step()).expect("prime");
                    t = session.min_step();
                }
                let out = session.step(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t)).expect("step");
                t += 1;
                black_box(out)
            })
        });
    }
    group.finish();
}

fn bench_step_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_lowering");
    group.sample_size(10);
    let salo = Salo::default_config();
    for (name, n, w) in [("longformer-2048-w256", 2048usize, 256usize), ("chat-512-w128", 512, 128)]
    {
        let pattern = sink_pattern(n, w);
        let view = pattern.decode_view().expect("view");
        let shape = salo_patterns::AttentionShape::new(n, 64, 1).expect("shape");
        let compiled = salo.compile(view.causal_pattern(), &shape).expect("compile");
        group.bench_with_input(BenchmarkId::from_parameter(name), &compiled, |b, compiled| {
            b.iter(|| {
                black_box(DecodePlan::lower(&compiled.plan, &compiled.lowered).expect("lower"))
            })
        });
        // Reference point: the prefill lowering the step program derives
        // from.
        group.bench_with_input(
            BenchmarkId::new("prefill_lowering", name),
            &compiled,
            |b, compiled| b.iter(|| black_box(LoweredPlan::lower(&compiled.plan))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decode_step, bench_step_lowering);
criterion_main!(benches);
