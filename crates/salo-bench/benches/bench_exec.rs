//! Execute-only hot path: the lowered datapath on pre-lowered plans with
//! reused scratch, across the three paper shapes (Longformer-2048, ViL
//! stage 1, dense BERT-base-512), plus the lowering pass itself.
//!
//! This is the acceptance bench of the lowered-pass-program PR: the
//! `execute_lowered` figures here are what `bench_trajectory` records in
//! `BENCH_exec.json`, and the Longformer-2048 entry is the one compared
//! against the pre-PR datapath (≥ 2x required).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use salo_core::{AttentionRequest, Engine, PatternHandle, Salo};
use salo_kernels::Qkv;
use salo_models::{bert_base, longformer_layer, vil_stage1, Workload};
use salo_sim::{ExecScratch, HeadsScratch, LoweredPlan, SpatialAccelerator};
use std::hint::black_box;
use std::sync::Arc;

fn shapes() -> Vec<(&'static str, Workload)> {
    vec![
        ("longformer-2048", longformer_layer(2048, 256, 768, 1).expect("longformer")),
        ("vil-stage1", vil_stage1()),
        ("bert-base-512", bert_base(512).expect("bert")),
    ]
}

fn bench_execute_lowered(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_lowered");
    group.sample_size(10);
    let salo = Salo::default_config();
    let mut scratch = ExecScratch::new();
    for (name, workload) in shapes() {
        let compiled = salo.compile(&workload.pattern, &workload.shape).expect("compile");
        let head = Qkv::random(workload.shape.seq_len, workload.shape.head_dim, 42);
        let scale = SpatialAccelerator::default_scale(workload.shape.head_dim);
        group.bench_with_input(BenchmarkId::from_parameter(name), &compiled, |b, compiled| {
            b.iter(|| {
                let out = salo
                    .accelerator()
                    .execute_lowered(
                        &compiled.lowered,
                        &head.q,
                        &head.k,
                        &head.v,
                        scale,
                        &mut scratch,
                    )
                    .expect("execute");
                black_box(out)
            })
        });
    }
    group.finish();
}

/// The abstraction-overhead guard of the unified engine API: the same
/// longformer-2048-w256 head executed through `execute_lowered` directly
/// and through `Engine::execute(AttentionRequest::Prefill)`. The engine
/// path adds request construction (one `Arc` clone of the plan handle,
/// one owned copy of the head tensors) and response boxing on top of the
/// identical datapath; the two entries must stay within 1% of each other
/// (~24 ms of compute vs ~0.1 ms of request plumbing — see
/// EXPERIMENTS.md, "Engine dispatch overhead").
fn bench_engine_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_engine_dispatch");
    group.sample_size(10);
    let salo = Salo::default_config();
    let workload = longformer_layer(2048, 256, 768, 1).expect("longformer");
    let compiled = Arc::new(salo.compile(&workload.pattern, &workload.shape).expect("compile"));
    let head = Qkv::random(workload.shape.seq_len, workload.shape.head_dim, 42);
    let scale = SpatialAccelerator::default_scale(workload.shape.head_dim);
    // One head through both paths (the plan is per-head; the layer shape
    // only multiplies the loop).
    let shape =
        salo_patterns::AttentionShape::new(workload.shape.seq_len, workload.shape.head_dim, 1)
            .expect("shape");

    let mut scratch = ExecScratch::new();
    group.bench_function(BenchmarkId::from_parameter("direct"), |b| {
        b.iter(|| {
            let out = salo
                .accelerator()
                .execute_lowered(&compiled.lowered, &head.q, &head.k, &head.v, scale, &mut scratch)
                .expect("execute");
            black_box(out)
        })
    });

    // Requests are consumed by `execute`, so pre-build a pool outside the
    // timed loop: a serving caller hands the engine tensors it already
    // owns, and re-cloning 1.5 MB of Q/K/V per iteration would measure
    // the benchmark harness, not the API.
    let make_request = || AttentionRequest::Prefill {
        pattern: PatternHandle::from_plan(Arc::clone(&compiled)),
        shape,
        heads: vec![head.clone()],
    };
    let mut pool: Vec<_> = (0..32).map(|_| make_request()).collect();
    let mut engine = salo.engine();
    group.bench_function(BenchmarkId::from_parameter("engine"), |b| {
        b.iter(|| {
            let request = pool.pop().unwrap_or_else(make_request);
            let out =
                engine.execute(request).expect("execute").into_prefill().expect("prefill response");
            black_box(out)
        })
    });
    group.finish();
}

/// The partitioned whole-heads path on Longformer-2048: one shard
/// (sequential datapath plus partition bookkeeping) against four shards
/// over scoped threads. On a single-core host the four-shard entry mostly
/// measures partitioning plus thread spawn/join overhead; with real cores
/// it shows the data-parallel scaling. Either way the output is
/// bit-identical to `exec_lowered` (the executors are proptest-pinned to
/// the systolic oracle at every shard count).
fn bench_execute_partitioned(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_partitioned");
    group.sample_size(10);
    let salo = Salo::default_config();
    let workload = longformer_layer(2048, 256, 768, 1).expect("longformer");
    let compiled = salo.compile(&workload.pattern, &workload.shape).expect("compile");
    let heads = vec![Qkv::random(workload.shape.seq_len, workload.shape.head_dim, 42)];
    let scale = SpatialAccelerator::default_scale(workload.shape.head_dim);
    let mut scratch = HeadsScratch::new();
    for parallelism in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("longformer-2048-p{parallelism}")),
            &parallelism,
            |b, &parallelism| {
                b.iter(|| {
                    let out = salo
                        .accelerator()
                        .execute_heads_lowered(
                            &compiled.lowered,
                            &heads,
                            scale,
                            parallelism,
                            &mut scratch,
                        )
                        .expect("execute");
                    black_box(out)
                })
            },
        );
    }
    group.finish();
}

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_lowering");
    group.sample_size(10);
    let salo = Salo::default_config();
    for (name, workload) in shapes() {
        let compiled = salo.compile(&workload.pattern, &workload.shape).expect("compile");
        group.bench_with_input(BenchmarkId::from_parameter(name), &compiled, |b, compiled| {
            b.iter(|| black_box(LoweredPlan::lower(&compiled.plan)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_execute_lowered,
    bench_engine_dispatch,
    bench_execute_partitioned,
    bench_lowering
);
criterion_main!(benches);
