//! Execute-only hot path: the lowered datapath on pre-lowered plans with
//! reused scratch, across the three paper shapes (Longformer-2048, ViL
//! stage 1, dense BERT-base-512), plus the lowering pass itself.
//!
//! This is the acceptance bench of the lowered-pass-program PR: the
//! `execute_lowered` figures here are what `bench_trajectory` records in
//! `BENCH_exec.json`, and the Longformer-2048 entry is the one compared
//! against the pre-PR datapath (≥ 2x required).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use salo_core::Salo;
use salo_kernels::Qkv;
use salo_models::{bert_base, longformer_layer, vil_stage1, Workload};
use salo_sim::{ExecScratch, LoweredPlan, SpatialAccelerator};
use std::hint::black_box;

fn shapes() -> Vec<(&'static str, Workload)> {
    vec![
        ("longformer-2048", longformer_layer(2048, 256, 768, 1).expect("longformer")),
        ("vil-stage1", vil_stage1()),
        ("bert-base-512", bert_base(512).expect("bert")),
    ]
}

fn bench_execute_lowered(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_lowered");
    group.sample_size(10);
    let salo = Salo::default_config();
    let mut scratch = ExecScratch::new();
    for (name, workload) in shapes() {
        let compiled = salo.compile(&workload.pattern, &workload.shape).expect("compile");
        let head = Qkv::random(workload.shape.seq_len, workload.shape.head_dim, 42);
        let scale = SpatialAccelerator::default_scale(workload.shape.head_dim);
        group.bench_with_input(BenchmarkId::from_parameter(name), &compiled, |b, compiled| {
            b.iter(|| {
                let out = salo
                    .accelerator()
                    .execute_lowered(
                        &compiled.lowered,
                        &head.q,
                        &head.k,
                        &head.v,
                        scale,
                        &mut scratch,
                    )
                    .expect("execute");
                black_box(out)
            })
        });
    }
    group.finish();
}

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_lowering");
    group.sample_size(10);
    let salo = Salo::default_config();
    for (name, workload) in shapes() {
        let compiled = salo.compile(&workload.pattern, &workload.shape).expect("compile");
        group.bench_with_input(BenchmarkId::from_parameter(name), &compiled, |b, compiled| {
            b.iter(|| black_box(LoweredPlan::lower(&compiled.plan)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_execute_lowered, bench_lowering);
criterion_main!(benches);
