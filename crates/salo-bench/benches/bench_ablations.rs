//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * pass pipelining on/off (the steady-state interval claim);
//! * exponential-LUT segment count vs evaluation cost (accuracy is
//!   reported by `table3_quantization` and the `salo-fixed` tests);
//! * array geometry (window-chunk width) vs plan shape;
//! * diagonal-reuse dataflow vs naive per-cell loads (traffic model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use salo_fixed::ExpLut;
use salo_models::longformer_layer;
use salo_scheduler::{ExecutionPlan, HardwareMeta};
use salo_sim::{AcceleratorConfig, SpatialAccelerator, TrafficReport};
use std::hint::black_box;

fn bench_pipelining(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pipelining");
    group.sample_size(10);
    let workload = longformer_layer(4096, 512, 768, 1).expect("workload");
    let plan = ExecutionPlan::build(&workload.pattern, HardwareMeta::default()).expect("plan");
    for pipelined in [true, false] {
        let config = AcceleratorConfig { pipelined, ..Default::default() };
        let sim = SpatialAccelerator::new(config);
        group.bench_with_input(
            BenchmarkId::from_parameter(if pipelined { "pipelined" } else { "serialized" }),
            &pipelined,
            |b, _| b.iter(|| black_box(sim.estimate(&plan, 64, 12))),
        );
    }
    group.finish();
}

fn bench_exp_lut_segments(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_exp_lut");
    for segments in [8usize, 16, 32, 64, 128] {
        let lut = ExpLut::new(segments);
        group.bench_with_input(BenchmarkId::from_parameter(segments), &lut, |b, lut| {
            b.iter(|| {
                let mut acc = 0i64;
                for x in (-2048..2048).step_by(64) {
                    acc = acc.wrapping_add(lut.eval_q8(x));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_array_geometry(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_array_geometry");
    group.sample_size(10);
    let workload = longformer_layer(2048, 256, 768, 1).expect("workload");
    for (rows, cols) in [(32usize, 32usize), (64, 16), (16, 64), (8, 128)] {
        let hw = HardwareMeta::new(rows, cols, 1, 1).expect("hw");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &hw,
            |b, hw| {
                b.iter(|| black_box(ExecutionPlan::build(&workload.pattern, *hw).expect("plan")))
            },
        );
    }
    group.finish();
}

fn bench_reuse_accounting(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dataflow_reuse");
    group.sample_size(10);
    let workload = longformer_layer(4096, 512, 768, 1).expect("workload");
    let plan = ExecutionPlan::build(&workload.pattern, HardwareMeta::default()).expect("plan");
    group.bench_function("traffic_report", |b| {
        b.iter(|| black_box(TrafficReport::from_plan(&plan, 64)))
    });
    group.finish();
}

fn bench_datapath_views(c: &mut Criterion) {
    // Vectorized vs event-accurate systolic execution of the same plan
    // (bit-identical results; this measures the host cost of fidelity).
    let mut group = c.benchmark_group("ablation_datapath_view");
    group.sample_size(10);
    let workload = longformer_layer(256, 32, 64, 1).expect("workload");
    let hw = HardwareMeta::default();
    let plan = ExecutionPlan::build(&workload.pattern, hw).expect("plan");
    let sim = SpatialAccelerator::default_instance();
    let qkv = salo_kernels::Qkv::random(256, 64, 3);
    let scale = SpatialAccelerator::default_scale(64);
    group.bench_function("vectorized", |b| {
        b.iter(|| black_box(sim.execute(&plan, &qkv.q, &qkv.k, &qkv.v, scale).expect("exec")))
    });
    group.bench_function("systolic_event_accurate", |b| {
        b.iter(|| {
            black_box(sim.execute_systolic(&plan, &qkv.q, &qkv.k, &qkv.v, scale).expect("exec"))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pipelining,
    bench_exp_lut_segments,
    bench_array_geometry,
    bench_reuse_accounting,
    bench_datapath_views
);
criterion_main!(benches);
