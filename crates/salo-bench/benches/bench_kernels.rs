//! Dense vs sparse reference kernels: the linear-vs-quadratic crossover
//! that motivates the whole paper, measured on real host code.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use salo_kernels::{
    banded_attention, dense_attention, fixed_sparse_attention, sparse_attention, FixedAttention,
    Qkv,
};
use salo_patterns::longformer;
use std::hint::black_box;

fn bench_sparse_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vs_dense");
    group.sample_size(10);
    for n in [256usize, 512, 1024] {
        let qkv = Qkv::random(n, 64, 7);
        let pattern = longformer(n, 64, 1).expect("pattern");
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| black_box(dense_attention(&qkv.q, &qkv.k, &qkv.v, 0.125).expect("dense")))
        });
        group.bench_with_input(BenchmarkId::new("sparse_w64", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    sparse_attention(&pattern, &qkv.q, &qkv.k, &qkv.v, 0.125).expect("sparse"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("banded_w64_b32", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    banded_attention(&pattern, &qkv.q, &qkv.k, &qkv.v, 0.125, 32).expect("banded"),
                )
            })
        });
    }
    group.finish();
}

fn bench_fixed_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixed_point_kernel");
    group.sample_size(10);
    let n = 512;
    let qkv = Qkv::random(n, 64, 9);
    let pattern = longformer(n, 64, 1).expect("pattern");
    let dp = FixedAttention::new(64);
    group.bench_function("fixed_sparse_n512_w64", |b| {
        b.iter(|| {
            black_box(fixed_sparse_attention(&pattern, &qkv.q, &qkv.k, &qkv.v, &dp).expect("fx"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sparse_vs_dense, bench_fixed_kernel);
criterion_main!(benches);
