//! Serving-runtime hot paths: the cached-plan lookup vs the full
//! scheduler pass, and closed-loop throughput across worker-pool sizes.
//!
//! The cached/uncached pair is the acceptance check for the plan cache: a
//! hit is a sharded map lookup, a miss is the whole splitting/reordering
//! pass, so the gap grows with sequence length. The worker sweep tracks
//! dispatch overhead; wall-clock scaling with pool size additionally
//! needs as many host cores as workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use salo_core::Salo;
use salo_models::longformer_layer;
use salo_serve::{PlanCache, PlanKey, SaloServer, ServeOptions, TrafficMix};
use salo_sim::AcceleratorConfig;
use std::hint::black_box;

fn bench_compile_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_compile_path");
    group.sample_size(10);
    let config = AcceleratorConfig::default();
    let salo = Salo::new(config.clone());
    for n in [1024usize, 4096] {
        let workload = longformer_layer(n, 256, 768, 1).expect("workload");
        let key = PlanKey::new(&workload.pattern, &workload.shape, &config);

        group.bench_with_input(BenchmarkId::new("uncached_compile", n), &workload, |b, w| {
            b.iter(|| black_box(salo.compile(&w.pattern, &w.shape).expect("compile")))
        });

        let cache = PlanCache::new(8, 2);
        let _ = cache
            .get_or_compile(key, &workload.pattern, &config, || {
                salo.compile(&workload.pattern, &workload.shape)
            })
            .expect("warm the cache");
        group.bench_with_input(BenchmarkId::new("cached_hit", n), &workload, |b, w| {
            b.iter(|| {
                let key = PlanKey::new(&w.pattern, &w.shape, &config);
                let (plan, hit) = cache
                    .get_or_compile(key, &w.pattern, &config, || salo.compile(&w.pattern, &w.shape))
                    .expect("lookup");
                assert!(hit, "warmed cache must hit");
                black_box(plan)
            })
        });
    }
    group.finish();
}

fn bench_serving_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_closed_loop");
    group.sample_size(10);
    let mix = TrafficMix::demo_mix();
    let total = 24u64;
    let requests: Vec<_> = (0..total).map(|i| mix.request(i)).collect();
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &requests, |b, requests| {
            b.iter(|| {
                let server = SaloServer::start(
                    AcceleratorConfig::default(),
                    ServeOptions { workers, max_batch: 8, ..Default::default() },
                );
                for request in requests {
                    server.submit(request.clone()).expect("submit");
                }
                for _ in 0..requests.len() {
                    black_box(server.recv().expect("response"));
                }
                black_box(server.shutdown())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile_path, bench_serving_workers);
criterion_main!(benches);
