//! E1 bench: dense attention latency vs sequence length (quadratic), on
//! real host kernels. Complements `table_motivation`'s model view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use salo_kernels::{dense_attention, Qkv};
use std::hint::black_box;

fn bench_dense_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_attention_scaling");
    group.sample_size(10);
    for n in [128usize, 256, 512, 1024] {
        let qkv = Qkv::random(n, 64, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let out = dense_attention(&qkv.q, &qkv.k, &qkv.v, 0.125).expect("dense");
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dense_scaling);
criterion_main!(benches);
