//! Shared table-printing utilities for the benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the SALO
//! paper; this library holds the formatting helpers they share. See
//! `EXPERIMENTS.md` at the repository root for the experiment index.

#![warn(missing_docs)]

/// Renders a plain-text table: a header row plus data rows, columns padded
/// to their widest cell.
#[must_use]
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, cell) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<width$} |", cell, width = widths[c]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let mut rule = String::from("|");
    for w in &widths {
        rule.push_str(&format!("{:-<width$}|", "", width = w + 2));
    }
    rule.push('\n');
    out.push_str(&rule);
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a ratio like `17.66x`.
#[must_use]
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats seconds as adaptive ms/us.
#[must_use]
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.1} us", seconds * 1e6)
    }
}

/// Prints a section banner for harness output.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "2.5".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with("|--"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ratio(17.659), "17.66x");
        assert_eq!(fmt_time(0.00425), "4.250 ms");
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(5e-6), "5.0 us");
    }
}
