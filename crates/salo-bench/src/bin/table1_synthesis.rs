//! E2 — Table 1: synthesis details of the SALO instance.
//!
//! Power and area come from the paper's Synopsys DC synthesis at FreePDK
//! 45 nm (we have no synthesis flow; see DESIGN.md §4). Everything else is
//! recomputed from the simulator configuration, including the derived
//! LUT storage of the fixed-point function units.

use salo_bench::{banner, render_table};
use salo_fixed::{ExpLut, RecipUnit};
use salo_models::paper::table1;
use salo_sim::AcceleratorConfig;

fn main() {
    banner("Table 1: Synthesis details (paper values + derived configuration)");
    let config = AcceleratorConfig::default();
    let exp = ExpLut::new(config.exp_segments);
    let recip = RecipUnit::new(config.recip_entries);

    let rows = vec![
        vec![
            "PE array size".into(),
            format!("{} x {}", config.hw.pe_rows, config.hw.pe_cols),
            format!("{} x {}", table1::PE_ARRAY.0, table1::PE_ARRAY.1),
        ],
        vec![
            "Global PE column".into(),
            config.hw.global_cols.to_string(),
            table1::GLOBAL_PE_COLS.to_string(),
        ],
        vec![
            "Global PE row".into(),
            config.hw.global_rows.to_string(),
            table1::GLOBAL_PE_ROWS.to_string(),
        ],
        vec![
            "Weighted sum modules".into(),
            (config.hw.pe_rows + config.hw.global_rows).to_string(),
            table1::WEIGHTED_SUM_MODULES.to_string(),
        ],
        vec![
            "Query buffer".into(),
            format!("{} KB", config.buffers.query_kb),
            format!("{} KB", table1::BUFFERS_KB.0),
        ],
        vec![
            "Key buffer".into(),
            format!("{} KB", config.buffers.key_kb),
            format!("{} KB", table1::BUFFERS_KB.1),
        ],
        vec![
            "Value buffer".into(),
            format!("{} KB", config.buffers.value_kb),
            format!("{} KB", table1::BUFFERS_KB.2),
        ],
        vec![
            "Output buffer".into(),
            format!("{} KB", config.buffers.output_kb),
            format!("{} KB", table1::BUFFERS_KB.3),
        ],
        vec![
            "Frequency".into(),
            format!("{} GHz", config.freq_ghz),
            format!("{} GHz", table1::FREQUENCY_GHZ),
        ],
        vec![
            "Power".into(),
            format!("{:.2} mW (synthesis constant)", config.power_w * 1e3),
            format!("{} mW", table1::POWER_MW),
        ],
        vec![
            "Area".into(),
            format!("{:.2} mm2 (synthesis constant)", config.area_mm2),
            format!("{} mm2", table1::AREA_MM2),
        ],
        vec![
            "exp LUT (derived)".into(),
            format!("{} segments, {} bits", exp.segments(), exp.storage_bits()),
            "-".into(),
        ],
        vec![
            "recip LUT (derived)".into(),
            format!("{} entries, {} bits", recip.entries(), recip.storage_bits()),
            "-".into(),
        ],
        vec![
            "Peak throughput (derived)".into(),
            format!("{:.2} TMAC/s", config.peak_macs_per_s() / 1e12),
            "-".into(),
        ],
    ];
    print!("{}", render_table(&["parameter", "this reproduction", "paper (Table 1)"], &rows));
}
