//! E6 — §6.3: comparison with Sanger at equal PE count, sparsity and
//! frequency.
//!
//! The table sweeps the paper's sparsity range (0.05–0.30) on a
//! Longformer-scale layer. SALO's latency comes from a real scheduler plan
//! through the cycle model; Sanger's from the §6.3 analytical model
//! (quadratic low-precision prediction + sparse attention at 55–75 %
//! utilization). The paper's headline is 1.33x at matched sparsity — our
//! model lands there at the dense end of the range and grows toward low
//! sparsity, where Sanger's prediction step dominates.

use salo_baselines::SangerModel;
use salo_bench::{banner, fmt_ratio, fmt_time, render_table};
use salo_core::Salo;
use salo_models::longformer_layer;
use salo_models::paper;

fn main() {
    banner("Section 6.3: SALO vs Sanger (1024 PEs, 1 GHz, matched sparsity)");
    let salo = Salo::default_config();
    let sanger = SangerModel::default();
    let n = 4096usize;
    let heads = 12usize;
    let d = 64usize;

    let mut rows = Vec::new();
    for window in [128usize, 256, 512, 768, 1024, 1228] {
        let workload = longformer_layer(n, window, heads * d, 0).expect("workload");
        let compiled = salo.compile(&workload.pattern, &workload.shape).expect("plan");
        let report = salo.estimate(&compiled);
        let density = workload.nnz() as f64 / (n as f64 * n as f64);
        let sanger_t = sanger.latency_s(n, workload.nnz(), d, heads);
        rows.push(vec![
            format!("{density:.3}"),
            fmt_time(report.time_s),
            fmt_time(sanger_t),
            fmt_ratio(sanger_t / report.time_s),
            format!("{:.1}%", report.utilization.mac_utilization * 100.0),
            format!("{:.1}%", sanger.utilization(density) * 100.0),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "density",
                "SALO latency",
                "Sanger latency",
                "SALO speedup",
                "SALO util",
                "Sanger util"
            ],
            &rows
        )
    );
    println!(
        "\npaper: {}x speedup at matched sparsity; SALO util > {:.0}%, Sanger {:.0}-{:.0}%",
        paper::SANGER_SPEEDUP,
        paper::SALO_UTILIZATION_MIN * 100.0,
        paper::SANGER_UTILIZATION.0 * 100.0,
        paper::SANGER_UTILIZATION.1 * 100.0
    );
}
