//! E4 — Fig. 7a: SALO speedup over CPU and GPU on the three evaluation
//! workloads, paper values alongside.

use salo_bench::{banner, fmt_ratio, fmt_time, render_table};
use salo_core::{figure7_comparisons, Salo};
use salo_models::paper;

fn main() {
    banner("Figure 7a: speedup of SALO vs CPU and GPU");
    let salo = Salo::default_config();
    let rows_data = figure7_comparisons(&salo).expect("figure 7 workloads compile");

    let mut rows = Vec::new();
    for (row, expect) in rows_data.iter().zip(&paper::FIGURE7) {
        rows.push(vec![
            row.workload.clone(),
            fmt_time(row.salo_latency_s),
            fmt_time(row.cpu_latency_s),
            fmt_time(row.gpu_latency_s),
            format!("{} (paper {})", fmt_ratio(row.speedup_cpu()), fmt_ratio(expect.speedup_cpu)),
            format!("{} (paper {})", fmt_ratio(row.speedup_gpu()), fmt_ratio(expect.speedup_gpu)),
            format!("{:.1}%", row.salo_utilization * 100.0),
        ]);
    }
    let avg_cpu = rows_data.iter().map(|r| r.speedup_cpu()).sum::<f64>() / rows_data.len() as f64;
    let avg_gpu = rows_data.iter().map(|r| r.speedup_gpu()).sum::<f64>() / rows_data.len() as f64;
    rows.push(vec![
        "Average".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{} (paper {})", fmt_ratio(avg_cpu), fmt_ratio(paper::AVG_SPEEDUP_CPU)),
        format!("{} (paper {})", fmt_ratio(avg_gpu), fmt_ratio(paper::AVG_SPEEDUP_GPU)),
        "-".into(),
    ]);
    print!(
        "{}",
        render_table(
            &[
                "workload",
                "SALO latency",
                "CPU latency",
                "GPU latency",
                "speedup vs CPU",
                "speedup vs GPU",
                "SALO util"
            ],
            &rows
        )
    );
}
