//! §2.2 quantified: SALO against the other attention accelerators the
//! paper surveys (A³, SpAtten, Sanger), on the Longformer workload across
//! sequence lengths.
//!
//! The paper's critiques, made measurable: A³ hits its SRAM ceiling and
//! spills; SpAtten's pruning leaves a quadratic core; Sanger predicts a
//! quadratic score matrix before computing. SALO's structured hybrid
//! patterns keep it linear.

use salo_baselines::{A3Model, SangerModel, SpAttenModel};
use salo_bench::{banner, fmt_time, render_table};
use salo_core::Salo;
use salo_models::longformer_layer;

fn main() {
    banner("Section 2.2 quantified: accelerator scaling on Longformer (w=512, 12 heads)");
    let salo = Salo::default_config();
    let sanger = SangerModel::default();
    let a3 = A3Model::default();
    let spatten = SpAttenModel::default();

    let mut rows = Vec::new();
    for n in [1024usize, 2048, 4096, 8192, 16384] {
        let workload = longformer_layer(n, 512, 768, 1).expect("workload");
        let compiled = salo.compile(&workload.pattern, &workload.shape).expect("plan");
        let t_salo = salo.estimate(&compiled).time_s;
        let t_sanger = sanger.latency_s(n, workload.nnz(), 64, 12);
        let t_a3 = a3.latency_s(n, 64, 12);
        let t_spatten = spatten.latency_s(n, 64, 12);
        let spilled = n > a3.max_resident_seq_len(64);
        rows.push(vec![
            n.to_string(),
            fmt_time(t_salo),
            fmt_time(t_sanger),
            format!("{}{}", fmt_time(t_a3), if spilled { " (SRAM spill)" } else { "" }),
            fmt_time(t_spatten),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["n", "SALO", "Sanger (predict+sparse)", "A3 (approx)", "SpAtten (pruned dense)"],
            &rows
        )
    );
    println!(
        "\nA3 key-SRAM ceiling at d=64: n = {} tokens; SpAtten effective density {:.2}",
        a3.max_resident_seq_len(64),
        spatten.effective_density()
    );
    println!(
        "note: A3 computes *approximate* attention (top-{} candidates/query) — a \
         different accuracy class; SALO computes the exact hybrid pattern.",
        a3.candidates_per_query
    );
}
