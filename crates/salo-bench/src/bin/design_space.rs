//! Design-space exploration: array geometry at a fixed 1024-PE budget,
//! scored on latency, power, area, and efficiency — the quantitative
//! backdrop to the paper's 32x32 choice.
//!
//! Latency comes from real scheduler plans through the cycle model; power
//! and area from the component model calibrated to Table 1 (see
//! `salo_sim::AreaPowerModel`). The global-token capacity column shows the
//! constraint the paper states in §5.2: `n_g <= min(n/#row, w/#col)`.

use salo_bench::{banner, fmt_time, render_table};
use salo_core::Salo;
use salo_models::longformer_base_4096;
use salo_scheduler::HardwareMeta;
use salo_sim::{bandwidth_report, AcceleratorConfig, AreaPowerModel, CycleModel};

fn main() {
    banner("Design space: 1024-PE geometries on Longformer-Base-4096");
    let workload = longformer_base_4096();
    let model = AreaPowerModel::calibrated();
    let (n, w) = (4096usize, 512usize);

    let mut rows = Vec::new();
    for (r, c) in [(8usize, 128usize), (16, 64), (32, 32), (64, 16), (128, 8)] {
        let config = AcceleratorConfig {
            hw: HardwareMeta::new(r, c, 1, 1).expect("hw"),
            ..Default::default()
        };
        let salo = Salo::new(config.clone());
        let compiled = salo.compile(&workload.pattern, &workload.shape).expect("plan");
        let t = salo.estimate(&compiled);
        let ap = model.estimate(&config);
        let energy_mj = ap.power_w * t.time_s * 1e3;
        let ng_capacity = (n / r).min(w / c);
        let interval = CycleModel::new(&config).pass_interval(64);
        let bw = bandwidth_report(&config, 64, interval);
        rows.push(vec![
            format!("{r}x{c}"),
            fmt_time(t.time_s),
            format!("{:.1}%", t.utilization.mac_utilization * 100.0),
            format!("{:.1} mW", ap.power_w * 1e3),
            format!("{:.2} mm2", ap.area_mm2),
            format!("{energy_mj:.2} mJ"),
            ng_capacity.to_string(),
            if bw.feasible {
                "yes".into()
            } else {
                let worst = bw.output_bpc.max(bw.key_bpc).max(bw.query_bpc);
                format!("no ({worst:.0} B/cy)")
            },
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "geometry",
                "latency",
                "util",
                "power",
                "area",
                "energy/layer",
                "max globals",
                "ports ok"
            ],
            &rows
        )
    );
    println!(
        "\ntaller arrays amortize the stage-3 ripple and look faster — but their \
         short intervals exceed the output-buffer port bandwidth (last column): \
         they are not schedulable as modeled. 32x32 sits on the energy knee, \
         balances the global-token bounds (n/#row vs w/#col) and meets its \
         port budget — the paper's pick."
    );
}
