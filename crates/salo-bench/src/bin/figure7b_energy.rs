//! E5 — Fig. 7b: SALO energy saving over CPU and GPU, paper values
//! alongside.
//!
//! SALO energy is synthesized-power x time (the paper's method); baseline
//! energies use the per-FLOP constants calibrated in `salo-baselines`
//! (see EXPERIMENTS.md for the derivation from the paper's own ratios).

use salo_bench::{banner, fmt_ratio, render_table};
use salo_core::{figure7_comparisons, Salo};
use salo_models::paper;

fn main() {
    banner("Figure 7b: energy saving of SALO vs CPU and GPU");
    let salo = Salo::default_config();
    let rows_data = figure7_comparisons(&salo).expect("figure 7 workloads compile");

    let mut rows = Vec::new();
    for (row, expect) in rows_data.iter().zip(&paper::FIGURE7) {
        rows.push(vec![
            row.workload.clone(),
            format!("{:.3} mJ", row.salo_energy_j * 1e3),
            format!("{:.1} mJ", row.cpu_energy_j * 1e3),
            format!("{:.1} mJ", row.gpu_energy_j * 1e3),
            format!(
                "{} (paper {})",
                fmt_ratio(row.energy_saving_cpu()),
                fmt_ratio(expect.energy_cpu)
            ),
            format!(
                "{} (paper {})",
                fmt_ratio(row.energy_saving_gpu()),
                fmt_ratio(expect.energy_gpu)
            ),
        ]);
    }
    let avg_cpu =
        rows_data.iter().map(|r| r.energy_saving_cpu()).sum::<f64>() / rows_data.len() as f64;
    let avg_gpu =
        rows_data.iter().map(|r| r.energy_saving_gpu()).sum::<f64>() / rows_data.len() as f64;
    rows.push(vec![
        "Average".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{} (paper {})", fmt_ratio(avg_cpu), fmt_ratio(paper::AVG_ENERGY_CPU)),
        format!("{} (paper {})", fmt_ratio(avg_gpu), fmt_ratio(paper::AVG_ENERGY_GPU)),
    ]);
    print!(
        "{}",
        render_table(
            &[
                "workload",
                "SALO energy",
                "CPU energy",
                "GPU energy",
                "saving vs CPU",
                "saving vs GPU"
            ],
            &rows
        )
    );
}
