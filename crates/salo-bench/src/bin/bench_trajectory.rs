//! Perf-trajectory bench: times the lowered execute path on the paper
//! shapes and writes machine-readable `BENCH_exec.json` at the repo root.
//!
//! Run `cargo run --release --bin bench_trajectory` for the full shapes
//! (Longformer-2048, ViL stage 1, dense BERT-base-512) or with `--smoke`
//! for tiny shapes (CI keeps the emitter and the bench path green without
//! paying for a full measurement).
//!
//! Each shape is timed as: compile + lower once, then `ITERS` executions
//! of one head through `execute_lowered` with a reused scratch; the
//! median is reported. The pre-PR baseline constants below were measured
//! at the seed of this PR (commit `d3bb64b`, interleaved A/B on the same
//! host) and give the recorded speedup on the Longformer-2048 execute
//! path.
//!
//! Before timing, every shape (smoke shapes included, so CI covers it)
//! additionally runs once through the partitioned
//! `execute_heads_lowered` path — at `SALO_PARALLELISM` shards, minimum
//! two — and asserts the result is bit-identical to the sequential
//! execution; the per-shard op counts land in the JSON as the balance
//! record alongside `speedup_vs_pr3` (same-host re-measured baseline).

use salo_core::Salo;
use salo_kernels::Qkv;
use salo_models::{bert_base, longformer_layer, vil_stage1, Workload};
use salo_patterns::{HybridPattern, Window};
use salo_sim::{ExecScratch, HeadsScratch, Partition, SpatialAccelerator, StageProfile};
use std::time::Instant;

/// Pre-PR (`execute` on the plan-walking datapath) medians, ns per pass,
/// measured interleaved against the lowered path on the same host (median
/// of three alternating rounds, 7 iterations each). `None` where no
/// pre-PR baseline was recorded.
fn baseline_ns_per_pass(name: &str) -> Option<f64> {
    match name {
        "longformer-2048" => Some(97_190.0),
        "vil-stage1" => Some(89_566.0),
        "bert-base-512" => Some(91_532.0),
        _ => None,
    }
}

/// The allocation-free lowered datapath as it stood before the
/// vectorization pass (PR 3 state), ns per pass, re-measured on the same
/// host as this PR's numbers (best of three rounds against a baseline
/// build — the values PR 3 recorded in `BENCH_exec.json` were taken under
/// a different host load and are not directly comparable). `None` where
/// no baseline was recorded.
fn pr3_ns_per_pass(name: &str) -> Option<f64> {
    match name {
        "longformer-2048" => Some(54_692.0),
        "vil-stage1" => Some(51_239.0),
        "bert-base-512" => Some(51_577.0),
        _ => None,
    }
}

struct Measurement {
    name: String,
    n: usize,
    d: usize,
    passes: usize,
    ms_per_head: f64,
    ns_per_pass: f64,
    tokens_per_s: f64,
    speedup_vs_pre_pr: Option<f64>,
    speedup_vs_pr3: Option<f64>,
    parallelism: usize,
    shard_op_counts: Vec<usize>,
    /// Stage-level cost breakdown from one profiled pass (profiling off
    /// during the timed iterations, so it never distorts the medians).
    stages: StageProfile,
}

fn measure(name: &str, workload: &Workload, iters: usize) -> Measurement {
    let salo = Salo::default_config();
    let compiled = salo.compile(&workload.pattern, &workload.shape).expect("compile");
    let n = workload.shape.seq_len;
    let d = workload.shape.head_dim;
    let head = Qkv::random(n, d, 42);
    let scale = SpatialAccelerator::default_scale(d);
    let mut scratch = ExecScratch::new();
    let accel = salo.accelerator();
    // Warm up (grows the scratch to the shape's high-water mark).
    let out = accel
        .execute_lowered(&compiled.lowered, &head.q, &head.k, &head.v, scale, &mut scratch)
        .expect("execute");
    assert_eq!(out.report.saturation_events, 0, "degenerate configuration");
    // Exercise the partitioned path (at least two shards; more under
    // `SALO_PARALLELISM`) and hold it to the determinism guarantee: the
    // sharded execution must be bit-identical to the sequential pass it
    // is about to time. The shard op counts go into the JSON as the
    // balance record.
    let parallelism = salo_core::env_parallelism().max(2);
    let partition = Partition::build(&compiled.lowered, 1, parallelism);
    let mut heads_scratch = HeadsScratch::new();
    let par_out = accel
        .execute_heads_lowered(
            &compiled.lowered,
            std::slice::from_ref(&head),
            scale,
            parallelism,
            &mut heads_scratch,
        )
        .expect("partitioned execute");
    assert_eq!(par_out.len(), 1);
    assert_eq!(par_out[0].raw, out.raw, "partitioned raw output diverged");
    assert_eq!(par_out[0].weights_q16, out.weights_q16, "partitioned weights diverged");
    assert_eq!(
        par_out[0].report.saturation_events, out.report.saturation_events,
        "partitioned saturation count diverged"
    );
    let mut samples_ns: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let t = Instant::now();
            let out = accel
                .execute_lowered(&compiled.lowered, &head.q, &head.k, &head.v, scale, &mut scratch)
                .expect("execute");
            std::hint::black_box(out);
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let passes = compiled.stats.passes.max(1);
    let ns_per_pass = median / passes as f64;
    // One additional profiled pass for the stage-level cost breakdown —
    // after the timed loop, so the per-op timer reads never pollute the
    // medians above. The profiled pass stays bit-identical (asserted),
    // only its wall clock differs.
    scratch.set_profiling(true);
    let profiled = accel
        .execute_lowered(&compiled.lowered, &head.q, &head.k, &head.v, scale, &mut scratch)
        .expect("profiled execute");
    scratch.set_profiling(false);
    assert_eq!(profiled.raw, out.raw, "profiling changed the datapath output");
    let stages = profiled.report.stages.expect("profiling was enabled");
    Measurement {
        name: name.to_string(),
        n,
        d,
        passes,
        ms_per_head: median / 1e6,
        ns_per_pass,
        tokens_per_s: n as f64 / (median / 1e9),
        speedup_vs_pre_pr: baseline_ns_per_pass(name).map(|base| base / ns_per_pass),
        speedup_vs_pr3: pr3_ns_per_pass(name).map(|base| base / ns_per_pass),
        parallelism,
        shard_op_counts: partition.op_counts(),
        stages,
    }
}

fn json_field_opt(value: Option<f64>) -> String {
    value.map_or_else(|| "null".into(), |v| format!("{v:.2}"))
}

struct DecodeMeasurement {
    name: String,
    n: usize,
    d: usize,
    steps: usize,
    ms_per_generation: f64,
    ns_per_token: f64,
    tokens_per_s: f64,
}

/// Times a full streaming-decode generation (prime the sink token, then
/// one `step` per position) over a causal window + attention-sink
/// pattern; the median of `iters` generations is reported per token.
fn measure_decode(name: &str, n: usize, w: usize, d: usize, iters: usize) -> DecodeMeasurement {
    let salo = Salo::default_config();
    let pattern = HybridPattern::builder(n)
        .window(Window::causal(w).expect("window"))
        .global_token(0)
        .build()
        .expect("pattern");
    let mut session = salo.decode_session(&pattern, d).expect("session");
    let qkv = Qkv::random(n, d, 42);
    let steps = n - session.min_step();
    let run = |session: &mut salo_core::DecodeSession| {
        session.reset();
        session.prime_rows(&qkv, 0..session.min_step()).expect("prime");
        for t in session.min_step()..n {
            let out = session.step(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t)).expect("step");
            std::hint::black_box(out);
        }
    };
    run(&mut session); // warm up: grow the arenas to the full history
    let mut samples_ns: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let t = Instant::now();
            run(&mut session);
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    DecodeMeasurement {
        name: name.to_string(),
        n,
        d,
        steps,
        ms_per_generation: median / 1e6,
        ns_per_token: median / steps as f64,
        tokens_per_s: steps as f64 / (median / 1e9),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (shapes, iters): (Vec<(&str, Workload)>, usize) = if smoke {
        (
            vec![
                ("smoke-longformer-64", longformer_layer(64, 8, 64, 1).expect("longformer")),
                ("smoke-bert-32", bert_base(32).expect("bert")),
            ],
            2,
        )
    } else {
        (
            vec![
                ("longformer-2048", longformer_layer(2048, 256, 768, 1).expect("longformer")),
                ("vil-stage1", vil_stage1()),
                ("bert-base-512", bert_base(512).expect("bert")),
            ],
            7,
        )
    };

    let mut entries = Vec::new();
    for (name, workload) in &shapes {
        let m = measure(name, workload, iters);
        println!(
            "{:<20} n={:<5} d={:<3} {:>9.3} ms/head {:>9.0} ns/pass {:>10.0} tokens/s  speedup {}",
            m.name,
            m.n,
            m.d,
            m.ms_per_head,
            m.ns_per_pass,
            m.tokens_per_s,
            m.speedup_vs_pre_pr.map_or_else(|| "-".into(), |s| format!("{s:.2}x")),
        );
        let total = m.stages.total_ns().max(1);
        println!(
            "  stages (1 profiled pass): qk_dot {:.1}% | exp_lut {:.1}% | renorm_merge {:.1}% | sv_mac {:.1}%  ({} ops, {} keys)",
            m.stages.qk_dot_ns as f64 * 100.0 / total as f64,
            m.stages.exp_lut_ns as f64 * 100.0 / total as f64,
            m.stages.renorm_merge_ns as f64 * 100.0 / total as f64,
            m.stages.sv_mac_ns as f64 * 100.0 / total as f64,
            m.stages.ops,
            m.stages.keys,
        );
        entries.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"n\": {}, \"d\": {}, \"passes\": {}, ",
                "\"ms_per_head\": {:.3}, \"ns_per_pass\": {:.1}, \"tokens_per_s\": {:.0}, ",
                "\"baseline_ns_per_pass\": {}, \"speedup_vs_pre_pr\": {}, ",
                "\"pr3_ns_per_pass\": {}, \"speedup_vs_pr3\": {}, ",
                "\"parallelism\": {}, \"shard_op_counts\": {:?}, ",
                "\"stage_ns\": {{\"qk_dot\": {}, \"exp_lut\": {}, \"renorm_merge\": {}, \"sv_mac\": {}}}, ",
                "\"stage_ops\": {}, \"stage_keys\": {}}}"
            ),
            m.name,
            m.n,
            m.d,
            m.passes,
            m.ms_per_head,
            m.ns_per_pass,
            m.tokens_per_s,
            json_field_opt(baseline_ns_per_pass(&m.name)),
            json_field_opt(m.speedup_vs_pre_pr),
            json_field_opt(pr3_ns_per_pass(&m.name)),
            json_field_opt(m.speedup_vs_pr3),
            m.parallelism,
            m.shard_op_counts,
            m.stages.qk_dot_ns,
            m.stages.exp_lut_ns,
            m.stages.renorm_merge_ns,
            m.stages.sv_mac_ns,
            m.stages.ops,
            m.stages.keys,
        ));
    }

    // Decode trajectory: steady-state per-token cost of the streaming
    // datapath on the same host, causal window + attention sink.
    let decode_shapes: Vec<(&str, usize, usize, usize)> = if smoke {
        vec![("smoke-decode-64-w16", 64, 16, 16)]
    } else {
        vec![("decode-longformer-2048-w256", 2048, 256, 64), ("decode-chat-512-w128", 512, 128, 64)]
    };
    let mut decode_entries = Vec::new();
    for &(name, n, w, d) in &decode_shapes {
        let m = measure_decode(name, n, w, d, iters);
        println!(
            "{:<28} n={:<5} d={:<3} {:>9.3} ms/gen  {:>9.0} ns/token {:>10.0} tokens/s",
            m.name, m.n, m.d, m.ms_per_generation, m.ns_per_token, m.tokens_per_s,
        );
        decode_entries.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"n\": {}, \"d\": {}, \"steps\": {}, ",
                "\"ms_per_generation\": {:.3}, \"ns_per_token\": {:.1}, \"tokens_per_s\": {:.0}}}"
            ),
            m.name, m.n, m.d, m.steps, m.ms_per_generation, m.ns_per_token, m.tokens_per_s,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"exec\",\n  \"smoke\": {},\n  \"iters\": {},\n  \"shapes\": [\n{}\n  ],\n  \"decode\": [\n{}\n  ]\n}}\n",
        smoke,
        iters,
        entries.join(",\n"),
        decode_entries.join(",\n"),
    );
    // Smoke runs go to a separate (gitignored) file so reproducing the CI
    // step locally never clobbers the recorded full measurement.
    let path = if smoke {
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_exec_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_exec.json")
    };
    std::fs::write(path, &json).expect("write bench JSON");
    println!("wrote {path}");
}
