//! Perf-trajectory bench: times the lowered execute path on the paper
//! shapes and writes machine-readable `BENCH_exec.json` at the repo root.
//!
//! Run `cargo run --release --bin bench_trajectory` for the full shapes
//! (Longformer-2048, ViL stage 1, dense BERT-base-512) or with `--smoke`
//! for tiny shapes (CI keeps the emitter and the bench path green without
//! paying for a full measurement).
//!
//! Each shape is timed as: compile + lower once, then `ITERS` executions
//! of one head through `execute_lowered` with a reused scratch; the
//! median is reported. The pre-PR baseline constants below were measured
//! at the seed of this PR (commit `d3bb64b`, interleaved A/B on the same
//! host) and give the recorded speedup on the Longformer-2048 execute
//! path.
//!
//! Before timing, every shape (smoke shapes included, so CI covers it)
//! additionally runs once through the partitioned
//! `execute_heads_lowered` path — at `SALO_PARALLELISM` shards, minimum
//! two — and asserts the result is bit-identical to the sequential
//! execution; the per-shard op counts land in the JSON as the balance
//! record alongside `speedup_vs_pr3` (same-host re-measured baseline).

use salo_baselines::ExecutionFamily;
use salo_core::Salo;
use salo_kernels::Qkv;
use salo_models::{bert_base, bigbird_layer, longformer_layer, vil_stage1, Workload};
use salo_patterns::{bigbird, AttentionShape, BlockLayout, HybridPattern, PatternTerm, Window};
use salo_serve::{GenerationShape, GenerationTraffic, SaloServer, ServeOptions};
use salo_sim::{
    AcceleratorConfig, BatchStep, DecodeState, ExecScratch, HeadsScratch, KvPagePool, Partition,
    SpatialAccelerator, StageProfile, DEFAULT_PAGE_ROWS,
};
use std::time::Instant;

/// A causal sliding window with an attention-sink global token — the
/// serving-shape pattern the chat decode benches run on.
fn sink_window(n: usize, w: usize) -> HybridPattern {
    HybridPattern::builder(n)
        .window(Window::causal(w).expect("window"))
        .global_token(0)
        .build()
        .expect("pattern")
}

/// A block-sparse pattern: local causal window of `block` rows plus the
/// banded block grid one block off the diagonal. The off-diagonal blocks
/// land in the residual and execute through the scheduler's gather
/// passes.
fn block_sparse_pattern(n: usize, block: usize) -> HybridPattern {
    HybridPattern::from_terms(
        n,
        vec![
            PatternTerm::Window(Window::causal(block).expect("window")),
            PatternTerm::BlockSparse {
                block_rows: block,
                layout: BlockLayout::Banded { radius: 1 },
            },
        ],
    )
    .expect("pattern")
}

/// The block-sparse pattern wrapped as a prefill workload.
fn block_sparse_workload(n: usize, block: usize, d: usize) -> Workload {
    Workload::new(
        format!("BlockSparse (n={n}, b={block})"),
        block_sparse_pattern(n, block),
        AttentionShape::new(n, d, 1).expect("shape"),
        ExecutionFamily::Banded1d,
    )
}

/// Pre-PR (`execute` on the plan-walking datapath) medians, ns per pass,
/// measured interleaved against the lowered path on the same host (median
/// of three alternating rounds, 7 iterations each). `None` where no
/// pre-PR baseline was recorded.
fn baseline_ns_per_pass(name: &str) -> Option<f64> {
    match name {
        "longformer-2048" => Some(97_190.0),
        "vil-stage1" => Some(89_566.0),
        "bert-base-512" => Some(91_532.0),
        _ => None,
    }
}

/// The allocation-free lowered datapath as it stood before the
/// vectorization pass (PR 3 state), ns per pass, re-measured on the same
/// host as this PR's numbers (best of three rounds against a baseline
/// build — the values PR 3 recorded in `BENCH_exec.json` were taken under
/// a different host load and are not directly comparable). `None` where
/// no baseline was recorded.
fn pr3_ns_per_pass(name: &str) -> Option<f64> {
    match name {
        "longformer-2048" => Some(54_692.0),
        "vil-stage1" => Some(51_239.0),
        "bert-base-512" => Some(51_577.0),
        _ => None,
    }
}

struct Measurement {
    name: String,
    n: usize,
    d: usize,
    passes: usize,
    ms_per_head: f64,
    ns_per_pass: f64,
    tokens_per_s: f64,
    speedup_vs_pre_pr: Option<f64>,
    speedup_vs_pr3: Option<f64>,
    parallelism: usize,
    shard_op_counts: Vec<usize>,
    /// Stage-level cost breakdown from one profiled pass (profiling off
    /// during the timed iterations, so it never distorts the medians).
    stages: StageProfile,
}

fn measure(name: &str, workload: &Workload, iters: usize) -> Measurement {
    let salo = Salo::default_config();
    let compiled = salo.compile(&workload.pattern, &workload.shape).expect("compile");
    let n = workload.shape.seq_len;
    let d = workload.shape.head_dim;
    let head = Qkv::random(n, d, 42);
    let scale = SpatialAccelerator::default_scale(d);
    let mut scratch = ExecScratch::new();
    let accel = salo.accelerator();
    // Warm up (grows the scratch to the shape's high-water mark).
    let out = accel
        .execute_lowered(&compiled.lowered, &head.q, &head.k, &head.v, scale, &mut scratch)
        .expect("execute");
    assert_eq!(out.report.saturation_events, 0, "degenerate configuration");
    // Exercise the partitioned path (at least two shards; more under
    // `SALO_PARALLELISM`) and hold it to the determinism guarantee: the
    // sharded execution must be bit-identical to the sequential pass it
    // is about to time. The shard op counts go into the JSON as the
    // balance record.
    let parallelism = salo_core::env_parallelism().max(2);
    let partition = Partition::build(&compiled.lowered, 1, parallelism);
    let mut heads_scratch = HeadsScratch::new();
    let par_out = accel
        .execute_heads_lowered(
            &compiled.lowered,
            std::slice::from_ref(&head),
            scale,
            parallelism,
            &mut heads_scratch,
        )
        .expect("partitioned execute");
    assert_eq!(par_out.len(), 1);
    assert_eq!(par_out[0].raw, out.raw, "partitioned raw output diverged");
    assert_eq!(par_out[0].weights_q16, out.weights_q16, "partitioned weights diverged");
    assert_eq!(
        par_out[0].report.saturation_events, out.report.saturation_events,
        "partitioned saturation count diverged"
    );
    let mut samples_ns: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let t = Instant::now();
            let out = accel
                .execute_lowered(&compiled.lowered, &head.q, &head.k, &head.v, scale, &mut scratch)
                .expect("execute");
            std::hint::black_box(out);
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let passes = compiled.stats.passes.max(1);
    let ns_per_pass = median / passes as f64;
    // One additional profiled pass for the stage-level cost breakdown —
    // after the timed loop, so the per-op timer reads never pollute the
    // medians above. The profiled pass stays bit-identical (asserted),
    // only its wall clock differs.
    scratch.set_profiling(true);
    let profiled = accel
        .execute_lowered(&compiled.lowered, &head.q, &head.k, &head.v, scale, &mut scratch)
        .expect("profiled execute");
    scratch.set_profiling(false);
    assert_eq!(profiled.raw, out.raw, "profiling changed the datapath output");
    let stages = profiled.report.stages.expect("profiling was enabled");
    Measurement {
        name: name.to_string(),
        n,
        d,
        passes,
        ms_per_head: median / 1e6,
        ns_per_pass,
        tokens_per_s: n as f64 / (median / 1e9),
        speedup_vs_pre_pr: baseline_ns_per_pass(name).map(|base| base / ns_per_pass),
        speedup_vs_pr3: pr3_ns_per_pass(name).map(|base| base / ns_per_pass),
        parallelism,
        shard_op_counts: partition.op_counts(),
        stages,
    }
}

fn json_field_opt(value: Option<f64>) -> String {
    value.map_or_else(|| "null".into(), |v| format!("{v:.2}"))
}

struct DecodeMeasurement {
    name: String,
    n: usize,
    d: usize,
    steps: usize,
    ms_per_generation: f64,
    ns_per_token: f64,
    tokens_per_s: f64,
}

/// Times a full streaming-decode generation (prime to `min_step`, then
/// one `step` per position) over an arbitrary decodable pattern; the
/// median of `iters` generations is reported per token. Before any
/// timing, one full generation is asserted bit-identical — raw rows and
/// softmax weights — to the causal-prefill oracle on the same compiled
/// plan.
fn measure_decode(
    name: &str,
    pattern: &HybridPattern,
    d: usize,
    iters: usize,
) -> DecodeMeasurement {
    let salo = Salo::default_config();
    let mut session = salo.decode_session(pattern, d).expect("session");
    let n = session.capacity();
    let qkv = Qkv::random(n, d, 42);
    let steps = n - session.min_step();

    // Decode-vs-prefill bit-identity gate: the generation about to be
    // timed must reproduce the causal-prefill rows exactly.
    {
        use salo_core::{AttentionRequest, Engine, PatternHandle};
        let compiled = session.shared_plan();
        let shape = compiled.shape;
        let mut engine = salo.engine();
        let prefill = engine
            .execute(AttentionRequest::Prefill {
                pattern: PatternHandle::from_plan(compiled),
                shape,
                heads: vec![qkv.clone()],
            })
            .expect("prefill oracle")
            .into_prefill()
            .expect("prefill response");
        let head = &prefill.heads[0];
        let raw = head.raw.as_ref().expect("raw output");
        let weights = head.weights_q16.as_ref().expect("weights");
        session.prime_rows(&qkv, 0..session.min_step()).expect("prime");
        for (t, row_weights) in weights.iter().enumerate().take(n).skip(session.min_step()) {
            let step = session.step(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t)).expect("step");
            let row: Vec<_> = (0..d).map(|c| raw.get(t, c)).collect();
            assert_eq!(step.raw, row, "{name}: decode diverged from prefill at step {t}");
            assert_eq!(&step.weight_q16, row_weights, "{name}: weight diverged at step {t}");
        }
    }
    let run = |session: &mut salo_core::DecodeSession| {
        session.reset();
        session.prime_rows(&qkv, 0..session.min_step()).expect("prime");
        for t in session.min_step()..n {
            let out = session.step(qkv.q.row(t), qkv.k.row(t), qkv.v.row(t)).expect("step");
            std::hint::black_box(out);
        }
    };
    run(&mut session); // warm up: grow the arenas to the full history
    let mut samples_ns: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let t = Instant::now();
            run(&mut session);
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    DecodeMeasurement {
        name: name.to_string(),
        n,
        d,
        steps,
        ms_per_generation: median / 1e6,
        ns_per_token: median / steps as f64,
        tokens_per_s: steps as f64 / (median / 1e9),
    }
}

struct BatchedMeasurement {
    name: String,
    sessions: usize,
    n: usize,
    d: usize,
    page_rows: usize,
    steps_total: usize,
    sequential_ns_per_step: f64,
    fused_ns_per_step: f64,
    fused_steps_per_s: f64,
    fused_speedup: f64,
    peak_pool_pages: u64,
}

/// Times the iteration-level fused decode kernel (`execute_steps`)
/// against per-session `execute_step` dispatch: `sessions` concurrent
/// generations of one shared plan advance in lockstep rounds over one
/// paged pool and one scratch. Before any timing, a full fused generation
/// is asserted bit-identical — raw rows, softmax weights, saturation
/// counts — to the sequential one, so the speedup is pure dispatch
/// amortization, never a numeric shortcut. At the raw simulator level a
/// dispatch is one function call, so the ratio hovers near parity; the
/// field exists to pin that fusion never *costs* per step, while the
/// serving-level win (amortized queue/tick machinery) shows up in the
/// `kv_residency` fused-step counters.
fn measure_decode_batched(
    name: &str,
    sessions: usize,
    n: usize,
    w: usize,
    d: usize,
    iters: usize,
) -> BatchedMeasurement {
    let salo = Salo::default_config();
    let causal = sink_window(n, w).decode_view().expect("decodable").into_causal_pattern();
    let shape = AttentionShape::new(causal.n(), d, 1).expect("shape");
    let compiled = salo.compile(&causal, &shape).expect("compile");
    let decode = compiled.decode_plan().expect("decode plan");
    let accel = salo.accelerator();
    let scale = SpatialAccelerator::default_scale(d);
    let inputs: Vec<Qkv> = (0..sessions).map(|s| Qkv::random(n, d, 42 + s as u64)).collect();
    let min_step = decode.min_step();

    let mut pool = KvPagePool::new(DEFAULT_PAGE_ROWS);
    let mut scratch = ExecScratch::new();
    let mut states: Vec<DecodeState> =
        (0..sessions).map(|_| DecodeState::new(&decode, d)).collect();

    let prime_all =
        |states: &mut [DecodeState], pool: &mut KvPagePool, scratch: &mut ExecScratch| {
            for (state, qkv) in states.iter_mut().zip(&inputs) {
                state.reset(&decode, d, pool);
                for t in 0..min_step {
                    accel
                        .prime_token(
                            &decode,
                            state,
                            qkv.q.row(t),
                            qkv.k.row(t),
                            qkv.v.row(t),
                            scale,
                            pool,
                            scratch,
                        )
                        .expect("prime");
                }
            }
        };
    // One stepping phase over every session; `sink` collects the outputs
    // of the verification passes and stays `None` while timing.
    let step_phase =
        |fused: bool,
         states: &mut [DecodeState],
         pool: &mut KvPagePool,
         scratch: &mut ExecScratch,
         mut sink: Option<&mut Vec<(Vec<salo_fixed::Fix16x8>, i64, u64)>>| {
            for t in min_step..n {
                if fused {
                    let mut batch: Vec<BatchStep> = states
                        .iter_mut()
                        .zip(&inputs)
                        .map(|(state, qkv)| BatchStep {
                            state,
                            q_t: qkv.q.row(t),
                            k_t: qkv.k.row(t),
                            v_t: qkv.v.row(t),
                            scale,
                        })
                        .collect();
                    for result in accel.execute_steps(&decode, &mut batch, pool, scratch) {
                        let out = result.expect("fused step");
                        match sink.as_deref_mut() {
                            Some(v) => v.push((out.raw, out.weight_q16, out.saturation_events)),
                            None => {
                                std::hint::black_box(&out);
                            }
                        }
                    }
                } else {
                    for (state, qkv) in states.iter_mut().zip(&inputs) {
                        let out = accel
                            .execute_step(
                                &decode,
                                state,
                                qkv.q.row(t),
                                qkv.k.row(t),
                                qkv.v.row(t),
                                scale,
                                pool,
                                scratch,
                            )
                            .expect("step");
                        match sink.as_deref_mut() {
                            Some(v) => v.push((out.raw, out.weight_q16, out.saturation_events)),
                            None => {
                                std::hint::black_box(&out);
                            }
                        }
                    }
                }
            }
        };

    // Verification: the fused pass must be bit-identical to sequential
    // dispatch before either is worth timing.
    let mut sequential = Vec::new();
    prime_all(&mut states, &mut pool, &mut scratch);
    step_phase(false, &mut states, &mut pool, &mut scratch, Some(&mut sequential));
    let mut fused = Vec::new();
    prime_all(&mut states, &mut pool, &mut scratch);
    step_phase(true, &mut states, &mut pool, &mut scratch, Some(&mut fused));
    assert_eq!(sequential.len(), fused.len());
    for (i, (seq, fus)) in sequential.iter().zip(&fused).enumerate() {
        assert_eq!(seq, fus, "fused step {i} diverged from sequential dispatch");
    }

    let time_phase = |fused: bool,
                      states: &mut [DecodeState],
                      pool: &mut KvPagePool,
                      scratch: &mut ExecScratch| {
        prime_all(states, pool, scratch);
        let t = Instant::now();
        step_phase(fused, states, pool, scratch, None);
        t.elapsed().as_nanos() as f64
    };
    // Interleaved A/B so host-load drift hits both paths equally.
    let mut seq_ns = Vec::new();
    let mut fus_ns = Vec::new();
    for _ in 0..iters.max(1) {
        seq_ns.push(time_phase(false, &mut states, &mut pool, &mut scratch));
        fus_ns.push(time_phase(true, &mut states, &mut pool, &mut scratch));
    }
    seq_ns.sort_by(|a, b| a.total_cmp(b));
    fus_ns.sort_by(|a, b| a.total_cmp(b));
    let seq_median = seq_ns[seq_ns.len() / 2];
    let fus_median = fus_ns[fus_ns.len() / 2];
    let steps_total = (n - min_step) * sessions;
    BatchedMeasurement {
        name: name.to_string(),
        sessions,
        n,
        d,
        page_rows: DEFAULT_PAGE_ROWS,
        steps_total,
        sequential_ns_per_step: seq_median / steps_total as f64,
        fused_ns_per_step: fus_median / steps_total as f64,
        fused_steps_per_s: steps_total as f64 / (fus_median / 1e9),
        fused_speedup: seq_median / fus_median,
        peak_pool_pages: pool.stats().high_water as u64,
    }
}

struct ResidencyMeasurement {
    name: String,
    sessions: usize,
    deep_sessions: usize,
    context: usize,
    d: usize,
    window: usize,
    page_rows: usize,
    token_slots: u64,
    contiguous_capacity_bytes: u64,
    contiguous_live_bytes: u64,
    paged_peak_bytes: u64,
    peak_pool_pages: u64,
    peak_resident_pages: u64,
    page_reclaims: u64,
    pool_exhausted: u64,
    decode_steps: u64,
    fused_steps: u64,
    ticks: u64,
    mean_resident_kv_bytes: f64,
    steps_per_s: f64,
}

/// Serving-level KV-residency traffic bench: a high-session-count mix —
/// a shallow cohort holding `sessions - deep` short generations resident
/// plus a deep cohort driven through the full `context` — on one worker,
/// so the scheduler tick fuses concurrent steps and the page pool serves
/// every session. Records sessions × context (the contiguous-arena
/// capacity a non-paged runtime would reserve) against the pool's
/// measured peak residency, which stays O(active window) per session
/// thanks to horizon reclamation.
#[allow(clippy::too_many_arguments)]
fn measure_kv_residency(
    name: &str,
    shallow_sessions: usize,
    deep_sessions: usize,
    context: usize,
    w: usize,
    d: usize,
    shallow_steps: usize,
    deep_steps: usize,
) -> ResidencyMeasurement {
    let pattern = sink_window(context, w);
    let shallow = GenerationTraffic::new(vec![GenerationShape {
        pattern: pattern.clone(),
        head_dim: d,
        num_heads: 1,
        prompt_len: 1,
    }])
    .expect("shallow mix");
    let deep = GenerationTraffic::new(vec![GenerationShape {
        pattern,
        head_dim: d,
        num_heads: 1,
        prompt_len: context - deep_steps,
    }])
    .expect("deep mix");

    let server = SaloServer::start(
        AcceleratorConfig::default(),
        ServeOptions {
            workers: 1, // one pool, one tick stream: maximal step fusion
            decode_page_rows: Some(DEFAULT_PAGE_ROWS),
            decode_pool_pages: None,
            ..Default::default()
        },
    );

    // Deep cohort first, serialized: each open ingests a near-full-context
    // prompt, and waiting per session bounds the transient token memory.
    let mut deep_handles = Vec::with_capacity(deep_sessions);
    let mut deep_tokens = Vec::with_capacity(deep_sessions);
    for i in 0..deep_sessions {
        let (request, steps) = deep.session_bounded(i as u64, deep_steps);
        let handle = server.open_session(request).expect("open deep");
        handle.wait_open().expect("deep session opened");
        deep_handles.push(handle);
        deep_tokens.push(steps);
    }
    // Shallow cohort pipelined: prompts are one row, so thousands of
    // opens can be in flight at once.
    let mut shallow_handles = Vec::with_capacity(shallow_sessions);
    let mut shallow_tokens = Vec::with_capacity(shallow_sessions);
    for i in 0..shallow_sessions {
        let (request, steps) = shallow.session_bounded(i as u64, shallow_steps);
        shallow_handles.push(server.open_session(request).expect("open shallow"));
        shallow_tokens.push(steps);
    }
    for handle in &shallow_handles {
        handle.wait_open().expect("shallow session opened");
    }

    // Lockstep stepping: submit one step for every live session, then
    // drain the round's events. Submitting the whole round before reading
    // backs the worker's queue up, which is exactly what lets the
    // scheduler tick fuse the steps.
    let rounds = shallow_steps.max(deep_steps);
    let mut steps_submitted = 0u64;
    let stepping = Instant::now();
    for round in 0..rounds {
        for (handle, tokens) in shallow_handles.iter().zip(&shallow_tokens) {
            if let Some(token) = tokens.get(round) {
                server.step_session(handle.id(), token.clone()).expect("shallow step");
                steps_submitted += 1;
            }
        }
        for (handle, tokens) in deep_handles.iter().zip(&deep_tokens) {
            if let Some(token) = tokens.get(round) {
                server.step_session(handle.id(), token.clone()).expect("deep step");
                steps_submitted += 1;
            }
        }
        for (handle, tokens) in
            shallow_handles.iter().zip(&shallow_tokens).chain(deep_handles.iter().zip(&deep_tokens))
        {
            if round < tokens.len() {
                let step = handle.next_step().expect("step result");
                std::hint::black_box(&step);
            }
        }
    }
    let stepping_s = stepping.elapsed().as_secs_f64();

    let ticks = server.metrics().counter("serve.decode.ticks").get();
    let fused_steps = server.metrics().counter("serve.decode.fused_steps").get();
    for handle in shallow_handles.iter().chain(&deep_handles) {
        server.close_session(handle.id()).expect("close");
    }
    let report = server.shutdown();
    assert_eq!(report.decode_step_errors, 0, "residency bench steps must all succeed");

    let sessions = shallow_sessions + deep_sessions;
    let token_slots = sessions as u64 * context as u64;
    let slot_bytes = (d * 2) as u64; // quantized K + V rows per token
    let contiguous_live_bytes = (shallow_sessions * (1 + shallow_steps)) as u64 * slot_bytes
        + (deep_sessions * context) as u64 * slot_bytes;
    let page_bytes = (DEFAULT_PAGE_ROWS * d * 2) as u64;
    ResidencyMeasurement {
        name: name.to_string(),
        sessions,
        deep_sessions,
        context,
        d,
        window: w,
        page_rows: DEFAULT_PAGE_ROWS,
        token_slots,
        contiguous_capacity_bytes: token_slots * slot_bytes,
        contiguous_live_bytes,
        paged_peak_bytes: report.decode_peak_pool_pages * page_bytes,
        peak_pool_pages: report.decode_peak_pool_pages,
        peak_resident_pages: report.decode_peak_resident_pages,
        page_reclaims: report.decode_page_reclaims,
        pool_exhausted: report.decode_pool_exhausted,
        decode_steps: steps_submitted,
        fused_steps,
        ticks,
        mean_resident_kv_bytes: report.decode_resident_kv_byte_steps as f64
            / report.decode_steps.max(1) as f64,
        steps_per_s: steps_submitted as f64 / stepping_s,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (shapes, iters): (Vec<(&str, Workload)>, usize) = if smoke {
        (
            vec![
                ("smoke-longformer-64", longformer_layer(64, 8, 64, 1).expect("longformer")),
                ("smoke-bert-32", bert_base(32).expect("bert")),
                ("smoke-bigbird-64", bigbird_layer(64, 8, 2, 1, 7, 64).expect("bigbird")),
                ("smoke-blocksparse-64", block_sparse_workload(64, 8, 64)),
            ],
            2,
        )
    } else {
        (
            vec![
                ("longformer-2048", longformer_layer(2048, 256, 768, 1).expect("longformer")),
                ("vil-stage1", vil_stage1()),
                ("bert-base-512", bert_base(512).expect("bert")),
                ("bigbird-1024", bigbird_layer(1024, 64, 3, 2, 7, 64).expect("bigbird")),
                ("blocksparse-1024", block_sparse_workload(1024, 64, 64)),
            ],
            7,
        )
    };

    let mut entries = Vec::new();
    for (name, workload) in &shapes {
        let m = measure(name, workload, iters);
        println!(
            "{:<20} n={:<5} d={:<3} {:>9.3} ms/head {:>9.0} ns/pass {:>10.0} tokens/s  speedup {}",
            m.name,
            m.n,
            m.d,
            m.ms_per_head,
            m.ns_per_pass,
            m.tokens_per_s,
            m.speedup_vs_pre_pr.map_or_else(|| "-".into(), |s| format!("{s:.2}x")),
        );
        let total = m.stages.total_ns().max(1);
        println!(
            "  stages (1 profiled pass): qk_dot {:.1}% | exp_lut {:.1}% | renorm_merge {:.1}% | sv_mac {:.1}%  ({} ops, {} keys)",
            m.stages.qk_dot_ns as f64 * 100.0 / total as f64,
            m.stages.exp_lut_ns as f64 * 100.0 / total as f64,
            m.stages.renorm_merge_ns as f64 * 100.0 / total as f64,
            m.stages.sv_mac_ns as f64 * 100.0 / total as f64,
            m.stages.ops,
            m.stages.keys,
        );
        entries.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"n\": {}, \"d\": {}, \"passes\": {}, ",
                "\"ms_per_head\": {:.3}, \"ns_per_pass\": {:.1}, \"tokens_per_s\": {:.0}, ",
                "\"baseline_ns_per_pass\": {}, \"speedup_vs_pre_pr\": {}, ",
                "\"pr3_ns_per_pass\": {}, \"speedup_vs_pr3\": {}, ",
                "\"parallelism\": {}, \"shard_op_counts\": {:?}, ",
                "\"stage_ns\": {{\"qk_dot\": {}, \"exp_lut\": {}, \"renorm_merge\": {}, \"sv_mac\": {}}}, ",
                "\"stage_ops\": {}, \"stage_keys\": {}}}"
            ),
            m.name,
            m.n,
            m.d,
            m.passes,
            m.ms_per_head,
            m.ns_per_pass,
            m.tokens_per_s,
            json_field_opt(baseline_ns_per_pass(&m.name)),
            json_field_opt(m.speedup_vs_pre_pr),
            json_field_opt(pr3_ns_per_pass(&m.name)),
            json_field_opt(m.speedup_vs_pr3),
            m.parallelism,
            m.shard_op_counts,
            m.stages.qk_dot_ns,
            m.stages.exp_lut_ns,
            m.stages.renorm_merge_ns,
            m.stages.sv_mac_ns,
            m.stages.ops,
            m.stages.keys,
        ));
    }

    // Decode trajectory: steady-state per-token cost of the streaming
    // datapath on the same host — chat-style sink windows plus the
    // residual-bearing zoo shapes (BigBird, block-sparse), each gated on
    // decode-vs-prefill bit-identity before timing.
    let decode_shapes: Vec<(&str, HybridPattern, usize)> = if smoke {
        vec![
            ("smoke-decode-64-w16", sink_window(64, 16), 16),
            ("smoke-decode-bigbird-48", bigbird(48, 6, 2, 1, 7).expect("bigbird"), 8),
            ("smoke-decode-blocksparse-48", block_sparse_pattern(48, 8), 8),
        ]
    } else {
        vec![
            ("decode-longformer-2048-w256", sink_window(2048, 256), 64),
            ("decode-chat-512-w128", sink_window(512, 128), 64),
            ("decode-bigbird-512-w64", bigbird(512, 64, 3, 2, 7).expect("bigbird"), 64),
            ("decode-blocksparse-512-b64", block_sparse_pattern(512, 64), 64),
        ]
    };
    let mut decode_entries = Vec::new();
    for (name, pattern, d) in &decode_shapes {
        let m = measure_decode(name, pattern, *d, iters);
        println!(
            "{:<28} n={:<5} d={:<3} {:>9.3} ms/gen  {:>9.0} ns/token {:>10.0} tokens/s",
            m.name, m.n, m.d, m.ms_per_generation, m.ns_per_token, m.tokens_per_s,
        );
        decode_entries.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"n\": {}, \"d\": {}, \"steps\": {}, ",
                "\"ms_per_generation\": {:.3}, \"ns_per_token\": {:.1}, \"tokens_per_s\": {:.0}}}"
            ),
            m.name, m.n, m.d, m.steps, m.ms_per_generation, m.ns_per_token, m.tokens_per_s,
        ));
    }

    // Iteration-level batched decode: the serving tick's fused kernel
    // (`execute_steps`) against per-session dispatch, bit-identity
    // asserted before timing.
    let batched_shapes: Vec<(&str, usize, usize, usize, usize)> = if smoke {
        vec![("smoke-decode-batched-4x64-w16", 4, 64, 16, 16)]
    } else {
        vec![
            ("decode-batched-48x512-w64", 48, 512, 64, 64),
            ("decode-batched-8x256-w32", 8, 256, 32, 64),
        ]
    };
    let mut batched_entries = Vec::new();
    for &(name, sessions, n, w, d) in &batched_shapes {
        let m = measure_decode_batched(name, sessions, n, w, d, iters);
        println!(
            "{:<28} {:>4} sessions n={:<5} d={:<3} {:>9.0} ns/step fused ({:>9.0} sequential) {:>10.0} steps/s  x{:.2}",
            m.name,
            m.sessions,
            m.n,
            m.d,
            m.fused_ns_per_step,
            m.sequential_ns_per_step,
            m.fused_steps_per_s,
            m.fused_speedup,
        );
        batched_entries.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"sessions\": {}, \"n\": {}, \"d\": {}, ",
                "\"page_rows\": {}, \"steps_total\": {}, ",
                "\"sequential_ns_per_step\": {:.1}, \"fused_ns_per_step\": {:.1}, ",
                "\"fused_steps_per_s\": {:.0}, \"fused_speedup\": {:.3}, ",
                "\"peak_pool_pages\": {}}}"
            ),
            m.name,
            m.sessions,
            m.n,
            m.d,
            m.page_rows,
            m.steps_total,
            m.sequential_ns_per_step,
            m.fused_ns_per_step,
            m.fused_steps_per_s,
            m.fused_speedup,
            m.peak_pool_pages,
        ));
    }

    // KV-residency traffic: many resident sessions over a long context on
    // a paged pool — what a contiguous-arena runtime would reserve versus
    // what the pool actually pins at peak. Tuple order:
    // (name, shallow, deep, context, window, d, shallow_steps, deep_steps).
    type ResidencyShape = (&'static str, usize, usize, usize, usize, usize, usize, usize);
    let residency_shapes: Vec<ResidencyShape> = if smoke {
        vec![("smoke-kv-residency-52x1k", 48, 4, 1024, 64, 32, 2, 32)]
    } else {
        vec![("kv-residency-10k-x-32k", 9_984, 16, 32_768, 256, 64, 4, 64)]
    };
    let mut residency_entries = Vec::new();
    for &(name, shallow, deep, context, w, d, shallow_steps, deep_steps) in &residency_shapes {
        let m = measure_kv_residency(name, shallow, deep, context, w, d, shallow_steps, deep_steps);
        println!(
            "{:<28} {:>5} sessions x {:<6} ctx  peak {:.2} MiB paged vs {:.0} MiB contiguous capacity  {} reclaims {:>8.0} steps/s",
            m.name,
            m.sessions,
            m.context,
            m.paged_peak_bytes as f64 / (1024.0 * 1024.0),
            m.contiguous_capacity_bytes as f64 / (1024.0 * 1024.0),
            m.page_reclaims,
            m.steps_per_s,
        );
        residency_entries.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"sessions\": {}, \"deep_sessions\": {}, ",
                "\"context\": {}, \"d\": {}, \"window\": {}, \"page_rows\": {}, ",
                "\"token_slots\": {}, \"contiguous_capacity_bytes\": {}, ",
                "\"contiguous_live_bytes\": {}, \"paged_peak_bytes\": {}, ",
                "\"peak_pool_pages\": {}, \"peak_resident_pages\": {}, ",
                "\"page_reclaims\": {}, \"pool_exhausted\": {}, ",
                "\"decode_steps\": {}, \"fused_steps\": {}, \"ticks\": {}, ",
                "\"mean_resident_kv_bytes\": {:.1}, \"steps_per_s\": {:.0}}}"
            ),
            m.name,
            m.sessions,
            m.deep_sessions,
            m.context,
            m.d,
            m.window,
            m.page_rows,
            m.token_slots,
            m.contiguous_capacity_bytes,
            m.contiguous_live_bytes,
            m.paged_peak_bytes,
            m.peak_pool_pages,
            m.peak_resident_pages,
            m.page_reclaims,
            m.pool_exhausted,
            m.decode_steps,
            m.fused_steps,
            m.ticks,
            m.mean_resident_kv_bytes,
            m.steps_per_s,
        ));
    }

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"exec\",\n  \"smoke\": {},\n  \"iters\": {},\n",
            "  \"shapes\": [\n{}\n  ],\n  \"decode\": [\n{}\n  ],\n",
            "  \"decode_batched\": [\n{}\n  ],\n  \"kv_residency\": [\n{}\n  ]\n}}\n"
        ),
        smoke,
        iters,
        entries.join(",\n"),
        decode_entries.join(",\n"),
        batched_entries.join(",\n"),
        residency_entries.join(",\n"),
    );
    // Smoke runs go to a separate (gitignored) file so reproducing the CI
    // step locally never clobbers the recorded full measurement.
    let path = if smoke {
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_exec_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_exec.json")
    };
    std::fs::write(path, &json).expect("write bench JSON");
    println!("wrote {path}");
}
