//! Closed-loop socket bench for the `salo-gateway` front door: spawns
//! two gateway *processes* (real multi-process sharding, real loopback
//! TCP), drives a mixed prefill + streaming-decode workload against each
//! shard from parent-side client threads, provokes the admission
//! controller with a pipelined overload burst, then drains both shards
//! and merges their wire-carried [`ServeReport`]s bucket-exactly with
//! [`ServeReport::merged_with`].
//!
//! Run `cargo run --release --bin gateway_bench` for the full loop or
//! with `--smoke` for a CI-sized run. Results land in the `"gateway"`
//! section of `BENCH_exec.json` (or `BENCH_exec_smoke.json` for smoke
//! runs) next to the kernel-trajectory numbers — the emitter preserves
//! whatever `bench_trajectory` wrote and replaces only its own section.
//!
//! Invariants asserted every run, smoke included:
//!
//! * one decode session driven over the socket is **bit-identical** —
//!   raw `i16` rows, Q.16 softmax weights, and `f32` output bits — to
//!   [`Salo::decode_session`](salo_core::Salo::decode_session) on the
//!   same pattern;
//! * the overload burst receives a reply for **every** pipelined request
//!   (typed `Overloaded` rejections, never a hang), with at least one
//!   rejection;
//! * the merged report's latency histogram is **bucket-exact**: every
//!   bucket equals the sum of the shard buckets, and per-tenant counters
//!   sum across shards.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use salo_core::Salo;
use salo_gateway::wire::{ErrorCode, Request, Response};
use salo_gateway::{Gateway, GatewayClient, GatewayOptions};
use salo_kernels::Qkv;
use salo_serve::{GenerationTraffic, ServeOptions, ServeReport, TrafficMix};
use salo_sim::AcceleratorConfig;

/// Tenant ids the steady-phase clients use (one connection each), and
/// the id the overload burst floods from.
const TENANT_A: u64 = 1;
const TENANT_B: u64 = 2;
const TENANT_FLOOD: u64 = 3;

/// Child mode: bind a gateway on an ephemeral loopback port, announce
/// it on stdout, and serve until a wire `Shutdown` drains the process.
fn serve_child() -> ! {
    let options = GatewayOptions {
        serve: ServeOptions { workers: 1, max_batch: 8, ..Default::default() },
        // Small per-tenant quota so the parent's pipelined burst actually
        // trips admission control instead of queueing unbounded.
        tenant_quota: 4,
        global_queue: 256,
        ..Default::default()
    };
    let gateway = Gateway::bind("127.0.0.1:0", AcceleratorConfig::default(), options)
        .expect("bind gateway shard");
    println!("GATEWAY_LISTENING {}", gateway.local_addr().port());
    std::io::stdout().flush().expect("flush port announcement");
    let report = gateway.run_until_shutdown();
    std::process::exit(if report.drained_in_deadline { 0 } else { 1 });
}

/// Spawns one gateway shard and parses its port announcement.
fn spawn_shard() -> (Child, u16) {
    let exe = std::env::current_exe().expect("current exe");
    let mut child = Command::new(exe)
        .arg("--serve")
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn gateway shard");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read port announcement");
    let port = line
        .trim()
        .strip_prefix("GATEWAY_LISTENING ")
        .and_then(|p| p.parse::<u16>().ok())
        .unwrap_or_else(|| panic!("bad port announcement: {line:?}"));
    (child, port)
}

/// What one shard's steady-phase driver brings home.
struct ShardRun {
    /// Per-request closed-loop latencies, seconds (prefills and steps).
    latencies_s: Vec<f64>,
    prefills: u64,
    sessions: u64,
    steps: u64,
    /// Socket-vs-in-process decode steps compared bit-exactly.
    bit_identical_steps: u64,
}

/// Drives the mixed closed loop against one shard: alternating-tenant
/// prefills over the demo workload mix, then streaming decode sessions.
/// `oracle` additionally replays one single-head session through
/// [`Salo::decode_session`] and asserts every step identical down to the
/// bit.
fn drive_shard(port: u16, prefills: u64, sessions: u64, steps: usize, oracle: bool) -> ShardRun {
    let addr = ("127.0.0.1", port);
    let mut client_a = GatewayClient::connect(addr, TENANT_A).expect("connect tenant A");
    let mut client_b = GatewayClient::connect(addr, TENANT_B).expect("connect tenant B");
    let mut latencies_s = Vec::new();

    let mix = TrafficMix::demo_mix();
    for i in 0..prefills {
        let workload = &mix.workloads()[(i % mix.len() as u64) as usize];
        let heads: Vec<Qkv> = (0..workload.shape.num_heads)
            .map(|h| {
                Qkv::random(workload.shape.seq_len, workload.shape.head_dim, i * 31 + h as u64)
            })
            .collect();
        let client = if i % 2 == 0 { &mut client_a } else { &mut client_b };
        let t = Instant::now();
        let (outputs, _, _) = client
            .prefill(workload.pattern.clone(), workload.shape, heads)
            .expect("closed-loop prefill");
        latencies_s.push(t.elapsed().as_secs_f64());
        assert_eq!(outputs.len(), workload.shape.num_heads, "prefill head count");
    }

    let traffic = GenerationTraffic::demo_mix();
    let mut steps_done = 0u64;
    let mut bit_identical_steps = 0u64;
    for s in 0..sessions {
        // Shape index 1 of the demo mix is single-head — the shape the
        // oracle session replays (`decode_session` holds one head).
        let index = if oracle && s == 0 { 1 } else { s };
        let (request, tokens) = traffic.session_bounded(index, steps);
        let check = oracle && s == 0;
        let mut session_oracle = check.then(|| {
            let salo = Salo::new(AcceleratorConfig::default());
            let mut ds =
                salo.decode_session(&request.pattern, request.head_dim).expect("oracle session");
            ds.prime_rows(&request.prompt[0], 0..request.prompt[0].seq_len())
                .expect("oracle prime");
            ds
        });
        let client = if s % 2 == 0 { &mut client_b } else { &mut client_a };
        let t = Instant::now();
        let opened = client
            .open_session(
                request.pattern.clone(),
                request.head_dim,
                request.num_heads,
                request.prompt,
            )
            .expect("open session");
        latencies_s.push(t.elapsed().as_secs_f64());
        for token in &tokens {
            let t = Instant::now();
            let (position, heads) = client.step(opened.session, token.clone()).expect("step");
            latencies_s.push(t.elapsed().as_secs_f64());
            steps_done += 1;
            if let Some(ds) = session_oracle.as_mut() {
                let reference =
                    ds.step(&token[0].q, &token[0].k, &token[0].v).expect("oracle step");
                assert_eq!(position, reference.position as u64, "socket position diverged");
                let wire_head = &heads[0];
                let raw: Vec<i16> = reference.raw.iter().map(|x| x.raw()).collect();
                assert_eq!(wire_head.raw.as_deref(), Some(raw.as_slice()), "raw rows diverged");
                assert_eq!(wire_head.weight_q16, Some(reference.weight_q16), "weights diverged");
                let bits: Vec<u32> = reference.output.iter().map(|x| x.to_bits()).collect();
                let wire_bits: Vec<u32> = wire_head.output.iter().map(|x| x.to_bits()).collect();
                assert_eq!(wire_bits, bits, "f32 output bits diverged");
                bit_identical_steps += 1;
            }
        }
        let t = Instant::now();
        client.close(opened.session).expect("close session");
        latencies_s.push(t.elapsed().as_secs_f64());
    }

    ShardRun { latencies_s, prefills, sessions, steps: steps_done, bit_identical_steps }
}

/// Pipelines `burst` prefills from one flooding tenant without reading,
/// then harvests every reply: accepted work completes, the rest must be
/// typed `Overloaded` rejections carrying a retry hint — never a hang.
fn overload_burst(port: u16, burst: u64) -> (u64, u64) {
    let mut flood =
        GatewayClient::connect(("127.0.0.1", port), TENANT_FLOOD).expect("connect flood");
    flood.set_read_timeout(Some(Duration::from_secs(60))).expect("read deadline");
    let mix = TrafficMix::demo_mix();
    let workload = &mix.workloads()[0];
    let heads: Vec<Qkv> = (0..workload.shape.num_heads)
        .map(|h| Qkv::random(workload.shape.seq_len, workload.shape.head_dim, 977 + h as u64))
        .collect();
    let request =
        Request::Prefill { pattern: workload.pattern.clone(), shape: workload.shape, heads };
    for _ in 0..burst {
        flood.send(&request).expect("pipelined send");
    }
    let (mut admitted, mut rejected) = (0u64, 0u64);
    for _ in 0..burst {
        let (_, response) = flood.recv().expect("every pipelined request gets a reply");
        match response {
            Response::PrefillDone { .. } => admitted += 1,
            Response::Error(frame) => {
                assert_eq!(frame.code, ErrorCode::Overloaded, "unexpected rejection: {frame:?}");
                assert!(frame.retry_after_ms.is_some(), "Overloaded must carry a retry hint");
                rejected += 1;
            }
            other => panic!("unexpected burst reply: {other:?}"),
        }
    }
    (admitted, rejected)
}

fn percentile(sorted_s: &[f64], q: f64) -> f64 {
    if sorted_s.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted_s.len() - 1) as f64).round() as usize;
    sorted_s[rank.min(sorted_s.len() - 1)]
}

/// Replaces (or appends) the `"gateway"` section of the bench JSON,
/// leaving the trajectory sections exactly as `bench_trajectory` wrote
/// them.
fn patch_bench_json(path: &str, section: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|_| "{\n  \"bench\": \"exec\"\n}\n".to_string());
    let mut base = match text.find(",\n  \"gateway\":") {
        Some(at) => text[..at].to_string(),
        None => {
            let trimmed = text.trim_end();
            trimmed.strip_suffix('}').expect("bench JSON object").trim_end().to_string()
        }
    };
    base.push_str(",\n  \"gateway\": ");
    base.push_str(section);
    base.push_str("\n}\n");
    std::fs::write(path, base).expect("write bench JSON");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--serve") {
        serve_child();
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let (prefills, sessions, steps, burst) =
        if smoke { (6u64, 2u64, 4usize, 24u64) } else { (24u64, 3u64, 10usize, 48u64) };

    const SHARDS: usize = 2;
    let mut children = Vec::new();
    let mut ports = Vec::new();
    for _ in 0..SHARDS {
        let (child, port) = spawn_shard();
        children.push(child);
        ports.push(port);
    }
    println!("{SHARDS} gateway shard(s) up on ports {ports:?}");

    // Steady phase: one closed-loop driver thread per shard.
    let wall = Instant::now();
    let runs: Vec<ShardRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = ports
            .iter()
            .enumerate()
            .map(|(i, &port)| {
                scope.spawn(move || drive_shard(port, prefills, sessions, steps, i == 0))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard driver")).collect()
    });
    let wall_s = wall.elapsed().as_secs_f64();

    // Overload phase: pipelined burst against each shard in turn.
    let (mut overload_admitted, mut rejected_overloaded) = (0u64, 0u64);
    for &port in &ports {
        let (admitted, rejected) = overload_burst(port, burst);
        overload_admitted += admitted;
        rejected_overloaded += rejected;
    }
    assert!(rejected_overloaded > 0, "the burst never tripped admission control");
    let overload_attempts = burst * SHARDS as u64;

    // Drain phase: ask every shard for its final report over the wire,
    // then reap the processes.
    let reports: Vec<ServeReport> = ports
        .iter()
        .map(|&port| {
            let mut client =
                GatewayClient::connect(("127.0.0.1", port), TENANT_A).expect("connect for drain");
            client.shutdown_and_report().expect("drain report")
        })
        .collect();
    for child in &mut children {
        let status = child.wait().expect("reap shard");
        assert!(status.success(), "shard exited uncleanly: {status:?}");
    }

    // Merge and hold the result to the bucket-exactness guarantee.
    let merged =
        reports[1..].iter().fold(reports[0].clone(), |acc, report| acc.merged_with(report));
    assert_eq!(
        merged.latency_hist.count,
        reports.iter().map(|r| r.latency_hist.count).sum::<u64>(),
        "merged histogram lost samples"
    );
    for (b, &bucket) in merged.latency_hist.buckets.iter().enumerate() {
        let expected: u64 = reports.iter().map(|r| r.latency_hist.buckets[b]).sum();
        assert_eq!(bucket, expected, "latency bucket {b} not exact across the merge");
    }
    for tenant in [TENANT_A, TENANT_B, TENANT_FLOOD] {
        let summed: u64 =
            reports.iter().filter_map(|r| r.tenants.get(&tenant)).map(|t| t.requests).sum();
        assert_eq!(
            merged.tenants.get(&tenant).map_or(0, |t| t.requests),
            summed,
            "tenant {tenant} counters not exact across the merge"
        );
    }
    let flood_rejections: u64 =
        reports.iter().filter_map(|r| r.tenants.get(&TENANT_FLOOD)).map(|t| t.rejections).sum();
    assert_eq!(flood_rejections, rejected_overloaded, "shard-side rejection count diverged");

    let mut latencies: Vec<f64> = runs.iter().flat_map(|r| r.latencies_s.iter().copied()).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let requests_total = latencies.len() as u64;
    let throughput_rps = requests_total as f64 / wall_s;
    let p50_ms = percentile(&latencies, 0.50) * 1e3;
    let p99_ms = percentile(&latencies, 0.99) * 1e3;
    let rejection_rate = rejected_overloaded as f64 / overload_attempts as f64;
    let bit_identical_steps: u64 = runs.iter().map(|r| r.bit_identical_steps).sum();
    assert!(bit_identical_steps > 0, "the oracle session never ran");

    println!(
        "steady: {requests_total} requests in {wall_s:.2}s over {SHARDS} shards  \
         {throughput_rps:.0} req/s  p50 {p50_ms:.2} ms  p99 {p99_ms:.2} ms"
    );
    println!(
        "overload: {overload_attempts} pipelined, {overload_admitted} admitted, \
         {rejected_overloaded} rejected ({:.0}% rejection)",
        rejection_rate * 100.0
    );
    println!(
        "merged: {} requests, {} decode steps, {} tenants, latency buckets exact; \
         {bit_identical_steps} socket steps bit-identical to decode_session",
        merged.requests,
        merged.decode_steps,
        merged.tenants.len()
    );

    let section = format!(
        concat!(
            "{{\n",
            "    \"smoke\": {smoke},\n",
            "    \"shards\": {shards},\n",
            "    \"prefills\": {prefills},\n",
            "    \"sessions\": {sessions},\n",
            "    \"steps\": {steps},\n",
            "    \"requests_total\": {requests_total},\n",
            "    \"wall_s\": {wall_s:.3},\n",
            "    \"throughput_rps\": {throughput_rps:.1},\n",
            "    \"p50_ms\": {p50_ms:.3},\n",
            "    \"p99_ms\": {p99_ms:.3},\n",
            "    \"overload_attempts\": {overload_attempts},\n",
            "    \"overload_admitted\": {overload_admitted},\n",
            "    \"rejected_overloaded\": {rejected_overloaded},\n",
            "    \"rejection_rate\": {rejection_rate:.3},\n",
            "    \"bit_identical_steps\": {bit_identical_steps},\n",
            "    \"merged\": {{\"requests\": {merged_requests}, \"errors\": {merged_errors}, ",
            "\"decode_steps\": {merged_steps}, \"latency_hist_count\": {hist_count}, ",
            "\"tenants\": {tenants}, \"bucket_exact\": true}}\n",
            "  }}"
        ),
        smoke = smoke,
        shards = SHARDS,
        prefills = runs.iter().map(|r| r.prefills).sum::<u64>(),
        sessions = runs.iter().map(|r| r.sessions).sum::<u64>(),
        steps = runs.iter().map(|r| r.steps).sum::<u64>(),
        requests_total = requests_total,
        wall_s = wall_s,
        throughput_rps = throughput_rps,
        p50_ms = p50_ms,
        p99_ms = p99_ms,
        overload_attempts = overload_attempts,
        overload_admitted = overload_admitted,
        rejected_overloaded = rejected_overloaded,
        rejection_rate = rejection_rate,
        bit_identical_steps = bit_identical_steps,
        merged_requests = merged.requests,
        merged_errors = merged.errors,
        merged_steps = merged.decode_steps,
        hist_count = merged.latency_hist.count,
        tenants = merged.tenants.len(),
    );
    // Smoke runs land next to the smoke trajectory file so reproducing
    // the CI step locally never clobbers the recorded full measurement.
    let path = if smoke {
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_exec_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_exec.json")
    };
    patch_bench_json(path, &section);
    println!("wrote gateway section to {path}");
}
