//! Runs every table/figure reproduction in sequence (E1–E7).
//!
//! Equivalent to running each `table*`/`figure*` binary; used to populate
//! EXPERIMENTS.md and as a smoke test of the whole harness.

use std::process::Command;

fn main() {
    let binaries = [
        "table_motivation",
        "table1_synthesis",
        "table2_workloads",
        "figure7a_speedup",
        "figure7b_energy",
        "table_sanger_comparison",
        "table_related_work",
        "table3_quantization",
        "design_space",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin directory");
    let mut failures = Vec::new();
    for bin in binaries {
        let path = dir.join(bin);
        println!("\n################ {bin} ################");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => failures.push(format!("{bin}: exit {s}")),
            Err(e) => failures.push(format!("{bin}: {e}")),
        }
    }
    if !failures.is_empty() {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
    println!("\nall experiments completed");
}
