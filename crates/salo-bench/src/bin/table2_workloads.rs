//! E3 — Table 2: key parameters of the evaluated attention layers,
//! including the sparsity column recomputed from our pattern library.

use salo_bench::{banner, render_table};
use salo_models::table2_rows;

fn main() {
    banner("Table 2: Key parameters of attention layers");
    let rows: Vec<Vec<String>> = table2_rows()
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                r.sequence,
                r.window,
                r.hidden.to_string(),
                r.global_tokens.to_string(),
                format!("{:.3}", r.sparsity),
                format!("{:.3}", r.exact_density),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "workload",
                "sequence",
                "window",
                "hidden",
                "globals",
                "sparsity (nominal)",
                "exact density"
            ],
            &rows
        )
    );
    println!("\npaper's Table 2 sparsity column: 0.125 / 0.072 / 0.288");
}
