//! E7 — Table 3: impact of SALO's fixed-point quantization on accuracy.
//!
//! Substitution: we have neither the pretrained checkpoints nor the paper's
//! datasets, so this runs the synthetic end-to-end tasks from `salo-quant`
//! (see its crate docs and DESIGN.md §4) plus raw attention-output error
//! metrics on Table 2-shaped patterns. The claim under test is the same as
//! the paper's: Q.4 inputs / 16-bit outputs cost at most a few tenths of a
//! point.

use salo_bench::{banner, render_table};
use salo_patterns::{grid_2d, longformer};
use salo_quant::{attention_error, sweep_fraction_bits, table3_rows};

fn main() {
    banner("Table 3 (substitute): accuracy with f32 vs quantized attention");
    let rows_data = table3_rows(2).expect("quantization tasks");
    let mut rows = Vec::new();
    for r in &rows_data {
        rows.push(vec![
            r.name.clone(),
            r.proxy_for.clone(),
            format!("{:.2}%", r.ours.accuracy_f32 * 100.0),
            format!("{:.2}%", r.ours.accuracy_quantized * 100.0),
            format!("{:.2}%", r.ours.accuracy_quantized_finetuned * 100.0),
            format!("{:.2}% -> {:.2}%", r.paper_original, r.paper_quantized),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "synthetic task",
                "proxies",
                "original (f32)",
                "quantized",
                "quantized+finetune",
                "paper (original -> quantized)"
            ],
            &rows
        )
    );

    banner("Raw attention-output error (fixed point vs f32, normalized inputs)");
    let patterns = [
        ("Longformer-shaped (n=512, w=64, 1 global)", longformer(512, 64, 1).expect("p")),
        ("ViL-shaped (24x24 grid, 7x7 window)", grid_2d(24, 24, 7, 7, 1).expect("p")),
    ];
    let mut rows = Vec::new();
    for (name, p) in &patterns {
        let r = attention_error(p, 64, 9).expect("error analysis");
        rows.push(vec![
            (*name).to_string(),
            format!("{:.2e}", r.mse),
            format!("{:.3}", r.max_abs),
            format!("{:.1} dB", r.sqnr_db),
            format!("{:.1}%", r.argmax_agreement * 100.0),
            r.saturation_events.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["pattern", "MSE", "max |err|", "SQNR", "argmax agreement", "saturations"],
            &rows
        )
    );

    banner("Why Q.4: fraction-bit sweep of the 8-bit input format");
    let pattern = longformer(256, 32, 1).expect("pattern");
    let sweep = sweep_fraction_bits(&pattern, 64, 17, &[1, 2, 3, 4, 5, 6, 7]).expect("sweep");
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                format!("Q.{}", p.frac_bits),
                format!("+-{}", p.range),
                format!("{:.1} dB", p.sqnr_db),
                format!("{:.4}", p.max_abs),
                format!("{:.2}%", p.clipped * 100.0),
            ]
        })
        .collect();
    print!("{}", render_table(&["format", "range", "output SQNR", "max |err|", "clipped"], &rows));
    println!("\nthe paper's Q.4 split sits on the SQNR plateau with zero clipping (6.4)");
}
