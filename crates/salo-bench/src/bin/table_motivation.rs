//! E1 — §2.1 motivation: dense attention latency grows quadratically with
//! sequence length.
//!
//! Two views are printed:
//!
//! 1. the calibrated GTX 1080Ti model over BERT-base attention, anchored
//!    to the paper's measurements (9.20 ms at n = 2048, 145.70 ms at
//!    n = 8192);
//! 2. real wall-clock measurements of the `salo-kernels` dense attention
//!    on *this* machine (one head, scaled down), demonstrating the same
//!    quadratic growth with live numbers.

use salo_baselines::{gtx_1080ti, host};
use salo_bench::{banner, fmt_time, render_table};
use salo_models::{bert_base, paper};

fn main() {
    banner("Motivation (2.1): dense BERT attention latency vs sequence length");

    let gpu = gtx_1080ti();
    let mut rows = Vec::new();
    let mut t2048 = 0.0f64;
    for n in [512usize, 1024, 2048, 4096, 8192] {
        let w = bert_base(n).expect("bert workload");
        let t = gpu.latency_s(&w.baseline());
        if n == 2048 {
            t2048 = t;
        }
        let paper_note = match n {
            2048 => format!("{} ms (paper)", paper::BERT_GPU_LATENCY_MS_N2048),
            8192 => format!("{} ms (paper)", paper::BERT_GPU_LATENCY_MS_N8192),
            _ => "-".into(),
        };
        let rel = if t2048 > 0.0 { format!("{:.2}x", t / t2048) } else { "-".into() };
        rows.push(vec![n.to_string(), fmt_time(t), rel, paper_note]);
    }
    print!("{}", render_table(&["n", "GTX 1080Ti model", "vs n=2048", "paper anchor"], &rows));

    banner("Same experiment measured on this host (one 64-dim head, f32 kernel)");
    let mut rows = Vec::new();
    let mut base = 0.0f64;
    for n in [256usize, 512, 1024, 2048] {
        let m = host::measure_dense(n, 64, 3, 42);
        if n == 256 {
            base = m.median_s;
        }
        rows.push(vec![
            n.to_string(),
            fmt_time(m.median_s),
            format!("{:.2}x", m.median_s / base),
            format!("{:.1}x expected if quadratic", (n as f64 / 256.0).powi(2)),
        ]);
    }
    print!("{}", render_table(&["n", "measured", "vs n=256", "quadratic reference"], &rows));
}
