//! The SALO data scheduler (§4 of the paper).
//!
//! The scheduler transforms a hybrid sparse attention pattern into an
//! [`ExecutionPlan`]: an ordered list of accelerator *passes* that satisfy
//! the dataflow constraint (translation-invariant key offsets, so the
//! diagonal K/V streaming works) and the size constraint (the PE array is
//! `#row x #col`). Three paper techniques are implemented:
//!
//! * **data reordering** (§4.2): a dilated window with gap `d` is split into
//!   `d` residue classes; inside a class, consecutive queries are `d` apart
//!   in the original sequence and the dilated window becomes a plain sliding
//!   window over *virtual* (quotient) indices. [`canonicalize`] performs
//!   this transformation, and [`Permutation`] exposes the equivalent
//!   physical reordering of the Q/K/V matrices;
//! * **data splitting** (§4.2): query tiles of `#row` (sequence splitting)
//!   and window-offset chunks of `#col` (window splitting). Window splitting
//!   is sound because of the Eq. 2 renormalization, implemented in `f64`
//!   here ([`merge_f64`]) and in fixed point in `salo-fixed`;
//! * **global token scheduling** (§5.2): the single global PE row/column is
//!   timeshared across passes; fresh-coverage tracking guarantees each
//!   `(global, token)` pair is computed exactly once, and supplemental
//!   passes are emitted if the window passes alone cannot stream every
//!   key/query past the global units (never needed for the paper's
//!   workloads — asserted in tests).
//!
//! The plan is *auditable*: [`verify_coverage`] replays a plan against the
//! original pattern and checks every kept score position is computed
//! exactly once.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod component;
mod coverage;
mod error;
mod hardware;
mod intervals;
mod merge;
mod pass;
mod permutation;
mod plan;

pub use component::{canonicalize, Component, ComponentKind};
pub use coverage::{verify_coverage, CoverageReport};
pub use error::SchedulerError;
pub use hardware::HardwareMeta;
pub use intervals::IntervalSet;
pub use merge::{merge_f64, PartF64};
pub use pass::{Pass, SupplementalKind, SupplementalPass};
pub use permutation::Permutation;
pub use plan::{ExecutionPlan, PlanStats};
