use crate::SchedulerError;

/// Description of the spatial accelerator's geometry, as the data scheduler
/// sees it (the paper's "hardware metadata", Fig. 3).
///
/// The synthesized SALO instance (Table 1) is a `32 x 32` PE array with one
/// global PE row and one global PE column, which [`HardwareMeta::default`]
/// reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HardwareMeta {
    /// PE array rows (`#row`): the query-tile height.
    pub pe_rows: usize,
    /// PE array columns (`#col`): the window-chunk width.
    pub pe_cols: usize,
    /// Number of global PE rows (global-query units).
    pub global_rows: usize,
    /// Number of global PE columns (global-key units).
    pub global_cols: usize,
}

impl Default for HardwareMeta {
    fn default() -> Self {
        Self { pe_rows: 32, pe_cols: 32, global_rows: 1, global_cols: 1 }
    }
}

impl HardwareMeta {
    /// Creates a geometry, validating that the PE array is non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulerError::InvalidHardware`] if either array dimension
    /// is zero.
    pub fn new(
        pe_rows: usize,
        pe_cols: usize,
        global_rows: usize,
        global_cols: usize,
    ) -> Result<Self, SchedulerError> {
        if pe_rows == 0 || pe_cols == 0 {
            return Err(SchedulerError::InvalidHardware {
                reason: format!("PE array {pe_rows}x{pe_cols} has a zero dimension"),
            });
        }
        Ok(Self { pe_rows, pe_cols, global_rows, global_cols })
    }

    /// Total PEs in the main array.
    #[must_use]
    pub fn array_pes(&self) -> usize {
        self.pe_rows * self.pe_cols
    }

    /// Total PEs including global row(s) and column(s).
    #[must_use]
    pub fn total_pes(&self) -> usize {
        self.array_pes() + self.global_rows * self.pe_cols + self.global_cols * self.pe_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let hw = HardwareMeta::default();
        assert_eq!(hw.pe_rows, 32);
        assert_eq!(hw.pe_cols, 32);
        assert_eq!(hw.global_rows, 1);
        assert_eq!(hw.global_cols, 1);
        assert_eq!(hw.array_pes(), 1024);
        assert_eq!(hw.total_pes(), 1024 + 32 + 32);
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(HardwareMeta::new(0, 32, 1, 1).is_err());
        assert!(HardwareMeta::new(32, 0, 1, 1).is_err());
        assert!(HardwareMeta::new(1, 1, 0, 0).is_ok());
    }
}
