//! Permutations for the data-reordering step (§4.2).
//!
//! To run a dilated window with gap `d`, SALO reorders the sequence so that
//! tokens of the same residue class modulo `d` become contiguous; the
//! dilated window then looks like a plain sliding window. This module
//! provides the permutation as a first-class object so workloads can
//! physically reorder their Q/K/V matrices (as the paper's data scheduler
//! does) and un-reorder the outputs.

/// A permutation of `0..n`.
///
/// `perm[new_index] = old_index`: applying the permutation gathers rows
/// from their old positions into the new order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<usize>,
}

impl Permutation {
    /// The identity permutation.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self { forward: (0..n).collect() }
    }

    /// Builds the dilation reordering: tokens grouped by `index % d`,
    /// classes in increasing residue order, original order inside a class.
    ///
    /// For `n = 8, d = 2` the new order is `[0, 2, 4, 6, 1, 3, 5, 7]`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn dilation_grouping(n: usize, d: usize) -> Self {
        assert!(d > 0, "dilation must be positive");
        let mut forward = Vec::with_capacity(n);
        for r in 0..d {
            forward.extend((r..n).step_by(d));
        }
        Self { forward }
    }

    /// Builds a permutation from an explicit gather list.
    ///
    /// # Panics
    ///
    /// Panics if `forward` is not a permutation of `0..len`.
    #[must_use]
    pub fn from_forward(forward: Vec<usize>) -> Self {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &idx in &forward {
            assert!(idx < n && !seen[idx], "not a permutation");
            seen[idx] = true;
        }
        Self { forward }
    }

    /// Length of the permuted domain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the domain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The gather list (`new -> old`).
    #[must_use]
    pub fn forward(&self) -> &[usize] {
        &self.forward
    }

    /// The inverse permutation (`old -> new`).
    #[must_use]
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.forward.len()];
        for (new, &old) in self.forward.iter().enumerate() {
            inv[old] = new;
        }
        Self { forward: inv }
    }

    /// Applies the permutation to a slice, gathering `out[new] = data[old]`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    #[must_use]
    pub fn apply<T: Clone>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.forward.len(), "length mismatch");
        self.forward.iter().map(|&old| data[old].clone()).collect()
    }

    /// Composes two permutations: `(self ∘ other)` applies `other` first.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "length mismatch");
        Self { forward: self.forward.iter().map(|&i| other.forward[i]).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dilation_grouping_example_from_paper() {
        // d = 2 groups even then odd indices.
        let p = Permutation::dilation_grouping(8, 2);
        assert_eq!(p.forward(), &[0, 2, 4, 6, 1, 3, 5, 7]);
        // d = 3 on 7 elements: classes 0,3,6 | 1,4 | 2,5.
        let p = Permutation::dilation_grouping(7, 3);
        assert_eq!(p.forward(), &[0, 3, 6, 1, 4, 2, 5]);
    }

    #[test]
    fn identity_is_neutral() {
        let id = Permutation::identity(5);
        let data = vec![10, 20, 30, 40, 50];
        assert_eq!(id.apply(&data), data);
        assert_eq!(id.inverse(), id);
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::dilation_grouping(10, 3);
        let data: Vec<i32> = (0..10).collect();
        let permuted = p.apply(&data);
        let restored = p.inverse().apply(&permuted);
        assert_eq!(restored, data);
        // And the other way round.
        let p_inv = p.inverse();
        assert_eq!(p_inv.inverse(), p);
    }

    #[test]
    fn dilated_window_becomes_sliding_after_reorder() {
        // The §4.2 equivalence: q_i attends k_{i+2k} (dilation 2). After
        // grouping by parity, attention partners are adjacent.
        let n = 12;
        let d = 2;
        let p = Permutation::dilation_grouping(n, d);
        let inv = p.inverse();
        for i in 0..n {
            for delta in [-4i64, -2, 0, 2, 4] {
                let j = i as i64 + delta;
                if j < 0 || j >= n as i64 {
                    continue;
                }
                let (ni, nj) = (inv.forward()[i], inv.forward()[j as usize]);
                // Same class, quotient distance delta/d.
                assert_eq!(nj as i64 - ni as i64, delta / d as i64, "i={i} delta={delta}");
            }
        }
    }

    #[test]
    fn compose_applies_right_first() {
        let a = Permutation::from_forward(vec![1, 2, 0]);
        let b = Permutation::from_forward(vec![2, 0, 1]);
        let data = vec!['x', 'y', 'z'];
        let via_compose = a.compose(&b).apply(&data);
        let via_two_steps = a.apply(&b.apply(&data));
        // compose gathers: out[new] = data[b[a[new]]]... check consistency
        // against the two-step application semantics.
        assert_eq!(
            via_compose,
            vec![
                data[b.forward()[a.forward()[0]]],
                data[b.forward()[a.forward()[1]]],
                data[b.forward()[a.forward()[2]]]
            ]
        );
        // Two-step: tmp[new] = data[b[new]]; out[new2] = tmp[a[new2]].
        assert_eq!(via_two_steps[0], data[b.forward()[a.forward()[0]]]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_duplicates() {
        let _ = Permutation::from_forward(vec![0, 0, 1]);
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert_eq!(p.apply(&Vec::<u8>::new()), Vec::<u8>::new());
    }
}
