use std::error::Error;
use std::fmt;

use salo_patterns::PatternError;

/// Errors from plan construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedulerError {
    /// The hardware description is degenerate (zero-sized array).
    InvalidHardware {
        /// Human-readable description.
        reason: String,
    },
    /// The pattern has no work for the PE array or the global units.
    EmptyPlan,
    /// An error bubbled up from the pattern layer.
    Pattern(PatternError),
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::InvalidHardware { reason } => {
                write!(f, "invalid hardware configuration: {reason}")
            }
            SchedulerError::EmptyPlan => write!(f, "pattern produces no executable work"),
            SchedulerError::Pattern(e) => write!(f, "pattern error: {e}"),
        }
    }
}

impl Error for SchedulerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedulerError::Pattern(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PatternError> for SchedulerError {
    fn from(e: PatternError) -> Self {
        SchedulerError::Pattern(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SchedulerError::InvalidHardware { reason: "zero rows".into() };
        assert!(e.to_string().contains("zero rows"));
        assert!(e.source().is_none());
        let e = SchedulerError::from(PatternError::EmptySequence);
        assert!(e.source().is_some());
        assert!(!SchedulerError::EmptyPlan.to_string().is_empty());
    }
}
