//! Execution plan construction: tiling, global-token scheduling and
//! statistics.

use salo_patterns::HybridPattern;

use crate::component::{canonicalize, Component};
use crate::intervals::IntervalSet;
use crate::pass::{GlobalColDuty, GlobalRowDuty, Pass, SupplementalKind, SupplementalPass};
use crate::{HardwareMeta, SchedulerError};

/// A complete schedule for one attention head on the spatial accelerator.
///
/// Produced by [`ExecutionPlan::build`]; consumed by the `salo-sim`
/// simulator (functional execution and cycle accounting) and by
/// [`verify_coverage`](crate::verify_coverage).
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    n: usize,
    hw: HardwareMeta,
    globals: Vec<usize>,
    components: Vec<Component>,
    passes: Vec<Pass>,
    supplemental: Vec<SupplementalPass>,
}

/// Summary statistics of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanStats {
    /// Number of main passes.
    pub passes: usize,
    /// Number of supplemental (global-unit-only) passes.
    pub supplemental_passes: usize,
    /// Total active PE cells over all main passes (each computes one
    /// score and one output contribution).
    pub active_cells: u64,
    /// Total PE cell slots (`passes * pe_rows * pe_cols`).
    pub cell_slots: u64,
    /// Fraction of array cell slots doing useful work (`active / slots`).
    pub occupancy: f64,
    /// Distinct keys streamed per pass, summed (diagonal-reuse loads).
    pub streamed_keys: u64,
    /// Key loads a reuse-free dataflow would need (one load per active
    /// cell) — the paper's data-reuse claim is `streamed_keys <<` this.
    pub naive_key_loads: u64,
    /// Scores computed by the global PE column (fresh query-token pairs).
    pub global_col_scores: u64,
    /// Scores computed by the global PE row (fresh token-key pairs).
    pub global_row_scores: u64,
}

impl ExecutionPlan {
    /// Builds a plan for `pattern` on the hardware `hw`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulerError::EmptyPlan`] if the pattern yields no work
    /// (every window offset out of range and no global tokens).
    pub fn build(pattern: &HybridPattern, hw: HardwareMeta) -> Result<Self, SchedulerError> {
        let n = pattern.n();
        let globals = pattern.globals().to_vec();
        if !globals.is_empty() && (hw.global_rows == 0 || hw.global_cols == 0) {
            return Err(SchedulerError::InvalidHardware {
                reason: format!(
                    "pattern has {} global token(s) but the instance has {} global row(s) \
                     and {} global column(s)",
                    globals.len(),
                    hw.global_rows,
                    hw.global_cols
                ),
            });
        }
        let components = canonicalize(pattern);

        // 1. Main passes: component x tile x chunk, skipping fully-inactive
        //    passes (all cells clipped or masked).
        let mut passes = Vec::new();
        for (ci, comp) in components.iter().enumerate() {
            let nq = comp.num_queries();
            let noff = comp.offsets().len();
            for tile_start in (0..nq).step_by(hw.pe_rows) {
                let tile_len = hw.pe_rows.min(nq - tile_start);
                for chunk_start in (0..noff).step_by(hw.pe_cols) {
                    let chunk_len = hw.pe_cols.min(noff - chunk_start);
                    let pass = Pass {
                        component: ci,
                        tile_start,
                        tile_len,
                        chunk_start,
                        chunk_len,
                        global_col: Vec::new(),
                        global_row: Vec::new(),
                    };
                    if pass_active_cells(&pass, comp, &globals) > 0 {
                        passes.push(pass);
                    }
                }
            }
        }

        if passes.is_empty() && globals.is_empty() {
            return Err(SchedulerError::EmptyPlan);
        }

        // 2. Global-column scheduling: each non-global query must meet each
        //    global token's key exactly once. A pass exposes its tile's
        //    queries; each of the `global_cols` units serves one token.
        let mut col_seen: Vec<IntervalSet> = globals.iter().map(|_| IntervalSet::new()).collect();
        if hw.global_cols > 0 {
            for pass in &mut passes {
                let comp = &components[pass.component];
                let tile = &comp.queries()[pass.tile_start..pass.tile_start + pass.tile_len];
                let mut used = 0;
                for (t, _g) in globals.iter().enumerate() {
                    if used == hw.global_cols {
                        break;
                    }
                    let fresh: Vec<u32> = tile
                        .iter()
                        .filter(|&&q| !is_global(&globals, q) && !col_seen[t].contains(q))
                        .map(|&q| q as u32)
                        .collect();
                    if fresh.is_empty() {
                        continue;
                    }
                    for &q in &fresh {
                        col_seen[t].insert(q as usize);
                    }
                    pass.global_col.push(GlobalColDuty { token: globals[t], fresh_queries: fresh });
                    used += 1;
                }
            }
        }

        // 3. Global-row scheduling: each global token's query must meet
        //    every key exactly once. The global row taps the key stream of
        //    the tile's last row: keys `queries_virtual = tile_end-1 + o`.
        let mut row_seen: Vec<IntervalSet> = globals.iter().map(|_| IntervalSet::new()).collect();
        if hw.global_rows > 0 {
            for pass in &mut passes {
                let comp = &components[pass.component];
                let tap_row = pass.tile_start + pass.tile_len - 1;
                let chunk = &comp.offsets()[pass.chunk_start..pass.chunk_start + pass.chunk_len];
                let mut used = 0;
                for (t, _g) in globals.iter().enumerate() {
                    if used == hw.global_rows {
                        break;
                    }
                    let mut fresh = Vec::new();
                    for &o in chunk {
                        let Some(key) = comp.key_at(tap_row, o) else { continue };
                        if !row_seen[t].contains(key) {
                            fresh.push(key as u32);
                        }
                    }
                    if fresh.is_empty() {
                        continue;
                    }
                    for &kj in &fresh {
                        row_seen[t].insert(kj as usize);
                    }
                    pass.global_row.push(GlobalRowDuty { token: globals[t], fresh_keys: fresh });
                    used += 1;
                }
            }
        }

        // 4. Supplemental passes for any remaining gaps.
        let mut supplemental = Vec::new();
        for (t, seen) in row_seen.iter().enumerate() {
            for (start, end) in seen.gaps(n) {
                for s in (start..end).step_by(hw.pe_cols.max(1)) {
                    supplemental.push(SupplementalPass {
                        kind: SupplementalKind::GlobalRow {
                            token: globals[t],
                            start: s,
                            end: end.min(s + hw.pe_cols),
                        },
                    });
                }
            }
        }
        for (t, seen) in col_seen.iter().enumerate() {
            let mut missing = IntervalSet::new();
            for (start, end) in seen.gaps(n) {
                missing.insert_range(start, end);
            }
            // Global queries are covered by the global row, not the column.
            for (start, end) in missing.ranges().to_vec() {
                let mut s = start;
                while s < end {
                    // Trim runs that are entirely global tokens.
                    while s < end && is_global(&globals, s) {
                        s += 1;
                    }
                    if s >= end {
                        break;
                    }
                    let mut e = (s + hw.pe_rows.max(1)).min(end);
                    // Stop a run early at a global token to keep ranges clean.
                    if let Some(g) = (s..e).find(|&q| is_global(&globals, q)) {
                        e = g;
                    }
                    supplemental.push(SupplementalPass {
                        kind: SupplementalKind::GlobalCol { token: globals[t], start: s, end: e },
                    });
                    s = e;
                }
            }
        }

        Ok(Self { n, hw, globals, components, passes, supplemental })
    }

    /// Sequence length.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The hardware geometry the plan was built for.
    #[must_use]
    pub fn hardware(&self) -> &HardwareMeta {
        &self.hw
    }

    /// Global tokens of the pattern.
    #[must_use]
    pub fn globals(&self) -> &[usize] {
        &self.globals
    }

    /// Whether `token` is global.
    #[must_use]
    pub fn is_global(&self, token: usize) -> bool {
        is_global(&self.globals, token)
    }

    /// The dataflow components.
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// The main passes, in execution order.
    #[must_use]
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    /// Supplemental global-unit passes (empty for the paper's workloads).
    #[must_use]
    pub fn supplemental(&self) -> &[SupplementalPass] {
        &self.supplemental
    }

    /// Active PE cells in one pass (score positions actually computed).
    #[must_use]
    pub fn pass_active_cells(&self, pass: &Pass) -> u64 {
        pass_active_cells(pass, &self.components[pass.component], &self.globals)
    }

    /// Computes summary statistics (single traversal of all passes).
    #[must_use]
    pub fn stats(&self) -> PlanStats {
        let mut active = 0u64;
        let mut streamed = 0u64;
        let mut col_scores = 0u64;
        let mut row_scores = 0u64;
        for pass in &self.passes {
            let comp = &self.components[pass.component];
            let pass_active = pass_active_cells(pass, comp, &self.globals);
            active += pass_active;
            // Row-support components gather: every active cell is its own
            // key load, with no diagonal reuse to count.
            streamed += match comp.kind() {
                crate::ComponentKind::RowSupport { .. } => pass_active,
                _ => pass.streamed_key_count(comp.offsets(), comp.keys().len()) as u64,
            };
            col_scores += pass.global_col.iter().map(|d| d.fresh_queries.len() as u64).sum::<u64>();
            row_scores += pass.global_row.iter().map(|d| d.fresh_keys.len() as u64).sum::<u64>();
        }
        for sup in &self.supplemental {
            match sup.kind {
                SupplementalKind::GlobalRow { start, end, .. } => {
                    row_scores += (end - start) as u64;
                }
                SupplementalKind::GlobalCol { start, end, .. } => {
                    col_scores += (end - start) as u64;
                }
            }
        }
        let slots = (self.passes.len() * self.hw.pe_rows * self.hw.pe_cols) as u64;
        PlanStats {
            passes: self.passes.len(),
            supplemental_passes: self.supplemental.len(),
            active_cells: active,
            cell_slots: slots,
            occupancy: if slots == 0 { 0.0 } else { active as f64 / slots as f64 },
            streamed_keys: streamed,
            naive_key_loads: active,
            global_col_scores: col_scores,
            global_row_scores: row_scores,
        }
    }
}

fn is_global(globals: &[usize], token: usize) -> bool {
    globals.binary_search(&token).is_ok()
}

/// Counts active cells of a pass: for each tile row, the chunk offsets that
/// land on a valid, non-global key — zero for global-query rows.
fn pass_active_cells(pass: &Pass, comp: &Component, globals: &[usize]) -> u64 {
    let chunk = &comp.offsets()[pass.chunk_start..pass.chunk_start + pass.chunk_len];
    if matches!(comp.kind(), crate::ComponentKind::RowSupport { .. }) {
        // Gather semantics: slot `o` of virtual query `p` is active iff it
        // is inside the row's support; the residual excludes global
        // queries and keys by normalization, so no subtraction applies.
        let mut active = 0u64;
        for u in 0..pass.tile_len {
            let p = pass.tile_start + u;
            let len = comp.row_len(p).expect("row-support component") as i64;
            active += chunk.partition_point(|&o| o < len) as u64;
        }
        return active;
    }
    let num_keys = comp.keys().len() as i64;
    let mut active = 0u64;
    for u in 0..pass.tile_len {
        let p = pass.tile_start + u;
        let qi = comp.queries()[p];
        if is_global(globals, qi) {
            continue;
        }
        // Valid offsets: -p <= o < num_keys - p.
        let lo = -(p as i64);
        let hi = num_keys - p as i64; // exclusive
        let from = chunk.partition_point(|&o| o < lo);
        let to = chunk.partition_point(|&o| o < hi);
        let mut count = (to - from) as u64;
        // Subtract offsets that land on global keys.
        for &g in globals {
            if let Some(vg) = comp_key_virtual(comp, g) {
                let o_needed = vg as i64 - p as i64;
                if chunk[from..to].binary_search(&o_needed).is_ok() {
                    count -= 1;
                }
            }
        }
        active += count;
    }
    active
}

/// The virtual index of sequence position `g` in the component's key list,
/// if present.
fn comp_key_virtual(comp: &Component, g: usize) -> Option<usize> {
    match comp.kind() {
        crate::ComponentKind::Direct => Some(g),
        crate::ComponentKind::DilatedClass { dilation, key_class, .. } => {
            (g % dilation == *key_class).then(|| (g - key_class) / dilation)
        }
        // The residual never references global keys, so there is nothing
        // to subtract (and no single virtual index exists: the arena may
        // hold a key many times across rows).
        crate::ComponentKind::RowSupport { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::{grid_2d, longformer, sliding_only, sparse_transformer};

    #[test]
    fn longformer_pass_counts_match_hand_calculation() {
        // n = 4096, w = 512, 32x32 array: 128 tiles x 16 chunks = 2048
        // candidate passes; boundary tiles lose some but none go fully
        // inactive (the window always overlaps the sequence).
        let p = longformer(4096, 512, 1).unwrap();
        let plan = ExecutionPlan::build(&p, HardwareMeta::default()).unwrap();
        assert_eq!(plan.components().len(), 1);
        let stats = plan.stats();
        assert!(stats.passes <= 2048, "passes {}", stats.passes);
        assert!(stats.passes >= 1900, "passes {}", stats.passes);
        assert_eq!(stats.supplemental_passes, 0, "no supplemental for Longformer");
        // Occupancy: boundary clipping costs ~w/2n of the window cells.
        assert!(stats.occupancy > 0.85, "occupancy {}", stats.occupancy);
        // Global units see every pair exactly once.
        assert_eq!(stats.global_row_scores, 4096);
        assert_eq!(stats.global_col_scores, 4095);
    }

    #[test]
    fn vil_stage1_plan_shape() {
        // 56x56 grid, 15x15 window: merged offsets = 225, chunks = 8,
        // tiles = ceil(3136/32) = 98.
        let p = grid_2d(56, 56, 15, 15, 1).unwrap();
        let plan = ExecutionPlan::build(&p, HardwareMeta::default()).unwrap();
        assert_eq!(plan.components().len(), 1, "bands merge into one direct component");
        let stats = plan.stats();
        assert!(stats.passes <= 98 * 8);
        assert!(stats.passes > 98 * 6);
        assert_eq!(stats.supplemental_passes, 0, "ViL needs no supplemental passes");
        assert_eq!(stats.global_row_scores, 3136);
        assert_eq!(stats.global_col_scores, 3135);
    }

    #[test]
    fn strided_pattern_produces_class_components() {
        let p = sparse_transformer(64, 4, 4).unwrap();
        let plan = ExecutionPlan::build(&p, HardwareMeta::new(8, 8, 1, 1).unwrap()).unwrap();
        // 1 direct + 4 classes.
        assert_eq!(plan.components().len(), 5);
        assert!(plan.stats().passes > 0);
    }

    #[test]
    fn zero_active_passes_skipped() {
        // Causal window: the first chunk of very negative offsets is fully
        // clipped for the first tile.
        let p = sliding_only(64, 63).unwrap();
        let plan = ExecutionPlan::build(&p, HardwareMeta::new(8, 8, 0, 0).unwrap()).unwrap();
        for pass in plan.passes() {
            assert!(plan.pass_active_cells(pass) > 0, "inactive pass kept");
        }
    }

    #[test]
    fn empty_plan_detected() {
        use salo_patterns::{HybridPattern, Window};
        let p =
            HybridPattern::builder(4).window(Window::sliding(100, 100).unwrap()).build().unwrap();
        assert!(matches!(
            ExecutionPlan::build(&p, HardwareMeta::default()),
            Err(SchedulerError::EmptyPlan)
        ));
    }

    #[test]
    fn global_pattern_requires_global_units() {
        let p = longformer(64, 8, 1).unwrap();
        let no_units = HardwareMeta::new(8, 8, 0, 0).unwrap();
        assert!(matches!(
            ExecutionPlan::build(&p, no_units),
            Err(SchedulerError::InvalidHardware { .. })
        ));
        // Without globals the same hardware is fine.
        let p = sliding_only(64, 8).unwrap();
        assert!(ExecutionPlan::build(&p, no_units).is_ok());
    }

    #[test]
    fn global_only_pattern_uses_supplemental_passes() {
        use salo_patterns::HybridPattern;
        let p = HybridPattern::builder(100).global_token(0).build().unwrap();
        let plan = ExecutionPlan::build(&p, HardwareMeta::default()).unwrap();
        assert!(plan.passes().is_empty());
        let stats = plan.stats();
        assert!(stats.supplemental_passes > 0);
        // Row must see all 100 keys, column the 99 non-global queries.
        assert_eq!(stats.global_row_scores, 100);
        assert_eq!(stats.global_col_scores, 99);
    }

    #[test]
    fn streamed_keys_show_diagonal_reuse() {
        let p = sliding_only(256, 64).unwrap();
        let plan = ExecutionPlan::build(&p, HardwareMeta::default()).unwrap();
        let stats = plan.stats();
        // Diagonal streaming loads far fewer vectors than per-cell loading.
        assert!(
            (stats.streamed_keys as f64) < 0.15 * stats.naive_key_loads as f64,
            "streamed {} vs naive {}",
            stats.streamed_keys,
            stats.naive_key_loads
        );
    }

    #[test]
    fn bigbird_pattern_schedules_residual_as_gather_passes() {
        use salo_patterns::bigbird;
        let p = bigbird(96, 8, 2, 1, 13).unwrap();
        let plan = ExecutionPlan::build(&p, HardwareMeta::new(8, 8, 1, 1).unwrap()).unwrap();
        assert!(
            plan.components()
                .iter()
                .any(|c| matches!(c.kind(), crate::ComponentKind::RowSupport { .. })),
            "residual canonicalizes into a row-support component"
        );
        let report = crate::verify_coverage(&plan, &p);
        assert!(report.is_exact(), "missing {:?} spurious {:?}", report.missing, report.spurious);
        // Gather cells count one key load each, so streamed keys include
        // the residual's active cells.
        let stats = plan.stats();
        assert!(stats.streamed_keys >= p.residual().nnz());
    }

    #[test]
    fn two_global_tokens_covered() {
        let p = longformer(256, 32, 2).unwrap();
        let plan = ExecutionPlan::build(&p, HardwareMeta::default()).unwrap();
        let stats = plan.stats();
        // Each token: row sees all n keys, col sees n - ng queries.
        assert_eq!(stats.global_row_scores, 2 * 256);
        assert_eq!(stats.global_col_scores, 2 * 254);
    }
}
