//! The Eq. 2 renormalization in exact `f64` arithmetic.
//!
//! This is the mathematical reference for the weighted-sum module: merging
//! locally-normalized softmax parts must equal the monolithic softmax. The
//! fixed-point implementation lives in `salo_fixed::merge_partials`; tests
//! validate both against each other and against unsplit attention.

/// A locally-normalized attention part: `W = Σ exp(s_j)` over the part's
/// keys, and `out = Σ exp(s_j) v_j / W`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartF64 {
    /// The part's softmax weight.
    pub weight: f64,
    /// The part's normalized output vector.
    pub out: Vec<f64>,
}

impl PartF64 {
    /// Computes a part from raw scores and value rows.
    ///
    /// # Panics
    ///
    /// Panics if `scores` and `values` lengths differ.
    #[must_use]
    pub fn from_scores(scores: &[f64], values: &[&[f64]], dim: usize) -> Self {
        assert_eq!(scores.len(), values.len(), "scores/values mismatch");
        let mut weight = 0.0f64;
        let mut acc = vec![0.0f64; dim];
        for (&s, &v) in scores.iter().zip(values) {
            let e = s.exp();
            weight += e;
            for (a, &ve) in acc.iter_mut().zip(v) {
                *a += e * ve;
            }
        }
        if weight > 0.0 {
            for a in &mut acc {
                *a /= weight;
            }
        }
        Self { weight, out: acc }
    }
}

/// Merges two parts per Eq. 2 of the paper:
/// `out = W1/(W1+W2) * out1 + W2/(W1+W2) * out2`, weight `W1 + W2`.
///
/// Merging with a zero-weight part returns the other part.
///
/// # Panics
///
/// Panics if output dimensions differ.
#[must_use]
pub fn merge_f64(a: &PartF64, b: &PartF64) -> PartF64 {
    assert_eq!(a.out.len(), b.out.len(), "dimension mismatch");
    if a.weight == 0.0 {
        return b.clone();
    }
    if b.weight == 0.0 {
        return a.clone();
    }
    let total = a.weight + b.weight;
    let (alpha, beta) = (a.weight / total, b.weight / total);
    PartF64 {
        weight: total,
        out: a.out.iter().zip(&b.out).map(|(&x, &y)| alpha * x + beta * y).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monolithic(scores: &[f64], values: &[&[f64]], dim: usize) -> Vec<f64> {
        PartF64::from_scores(scores, values, dim).out
    }

    #[test]
    fn split_equals_monolithic() {
        let scores = vec![0.3, -1.2, 2.0, 0.7, -0.5, 1.1];
        let rows: Vec<Vec<f64>> =
            (0..6).map(|k| vec![k as f64, -(k as f64), 0.5 * k as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let full = monolithic(&scores, &refs, 3);

        for split in 1..5 {
            let a = PartF64::from_scores(&scores[..split], &refs[..split], 3);
            let b = PartF64::from_scores(&scores[split..], &refs[split..], 3);
            let merged = merge_f64(&a, &b);
            for (m, f) in merged.out.iter().zip(&full) {
                assert!((m - f).abs() < 1e-12, "split {split}: {m} vs {f}");
            }
        }
    }

    #[test]
    fn three_way_split_associative() {
        let scores = vec![1.0, 2.0, 3.0, -1.0];
        let rows: Vec<Vec<f64>> = (0..4).map(|k| vec![(k * k) as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let parts: Vec<PartF64> =
            (0..4).map(|k| PartF64::from_scores(&scores[k..=k], &refs[k..=k], 1)).collect();
        let left = parts.iter().skip(1).fold(parts[0].clone(), |acc, p| merge_f64(&acc, p));
        let right = merge_f64(&merge_f64(&parts[0], &parts[1]), &merge_f64(&parts[2], &parts[3]));
        assert!((left.out[0] - right.out[0]).abs() < 1e-12);
        let full = monolithic(&scores, &refs, 1);
        assert!((left.out[0] - full[0]).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_is_identity() {
        let a = PartF64 { weight: 0.0, out: vec![0.0, 0.0] };
        let b = PartF64 { weight: 2.5, out: vec![1.0, -1.0] };
        assert_eq!(merge_f64(&a, &b), b);
        assert_eq!(merge_f64(&b, &a), b);
    }

    #[test]
    fn from_scores_handles_empty() {
        let p = PartF64::from_scores(&[], &[], 3);
        assert_eq!(p.weight, 0.0);
        assert_eq!(p.out, vec![0.0; 3]);
    }

    #[test]
    fn weights_accumulate() {
        let a = PartF64 { weight: 1.5, out: vec![2.0] };
        let b = PartF64 { weight: 0.5, out: vec![4.0] };
        let m = merge_f64(&a, &b);
        assert!((m.weight - 2.0).abs() < 1e-15);
        assert!((m.out[0] - 2.5).abs() < 1e-15);
    }
}
