//! One accelerator pass: a query tile times a window-offset chunk.

/// Duty assigned to a global PE column during a pass: compute the scores of
/// the tile's queries against one global token's key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalColDuty {
    /// The global token (sequence index) whose key column is computed.
    pub token: usize,
    /// Queries (sequence indices) whose `(i, token)` score is computed for
    /// the first time in this pass. Queries already covered in earlier
    /// passes are skipped by the hardware's valid-bit.
    pub fresh_queries: Vec<u32>,
}

/// Duty assigned to a global PE row during a pass: compute one global
/// token's query against the keys streaming through the array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalRowDuty {
    /// The global token (sequence index) whose query row is computed.
    pub token: usize,
    /// Keys (sequence indices) scored for the first time in this pass.
    pub fresh_keys: Vec<u32>,
}

/// One pass of the PE array: queries `tile_start..tile_start+tile_len`
/// (virtual indices of a component) against offsets
/// `chunk_start..chunk_start+chunk_len` (indices into the component's
/// offset list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pass {
    /// Index into the plan's component list.
    pub component: usize,
    /// First virtual query row of the tile.
    pub tile_start: usize,
    /// Tile height (`<= pe_rows`).
    pub tile_len: usize,
    /// First offset index of the chunk.
    pub chunk_start: usize,
    /// Chunk width (`<= pe_cols`).
    pub chunk_len: usize,
    /// Global-column duties this pass (at most `global_cols` entries).
    pub global_col: Vec<GlobalColDuty>,
    /// Global-row duties this pass (at most `global_rows` entries).
    pub global_row: Vec<GlobalRowDuty>,
}

/// What a supplemental pass computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupplementalKind {
    /// Stream keys `[start, end)` past a global PE row for `token`.
    GlobalRow {
        /// The global token whose query row needs these keys.
        token: usize,
        /// Key range start (sequence index).
        start: usize,
        /// Key range end (exclusive).
        end: usize,
    },
    /// Load queries `[start, end)` against a global PE column for `token`.
    GlobalCol {
        /// The global token whose key column needs these queries.
        token: usize,
        /// Query range start (sequence index).
        start: usize,
        /// Query range end (exclusive).
        end: usize,
    },
}

/// A pass that exists only to feed a global PE unit: emitted when the
/// window passes do not naturally stream some keys/queries past the global
/// units. The paper's workloads never need these (their windows sweep the
/// whole sequence), but arbitrary user patterns can.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupplementalPass {
    /// What the pass computes.
    pub kind: SupplementalKind,
}

impl Pass {
    /// The virtual key ranges streamed through the array during this pass:
    /// the Minkowski sum of the tile rows and the chunk offsets, merged
    /// into disjoint ranges. `offsets` must be the owning component's
    /// offset list.
    #[must_use]
    pub fn streamed_virtual_ranges(&self, offsets: &[i64], num_keys: usize) -> Vec<(usize, usize)> {
        let chunk = &offsets[self.chunk_start..self.chunk_start + self.chunk_len];
        let mut ranges: Vec<(i64, i64)> = Vec::with_capacity(chunk.len());
        for &o in chunk {
            let lo = self.tile_start as i64 + o;
            let hi = lo + self.tile_len as i64; // exclusive
            match ranges.last_mut() {
                Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                _ => ranges.push((lo, hi)),
            }
        }
        ranges
            .into_iter()
            .filter_map(|(lo, hi)| {
                let lo = lo.max(0) as usize;
                let hi = hi.max(0) as usize;
                let hi = hi.min(num_keys);
                (lo < hi).then_some((lo, hi))
            })
            .collect()
    }

    /// Number of distinct keys streamed (after clipping).
    #[must_use]
    pub fn streamed_key_count(&self, offsets: &[i64], num_keys: usize) -> usize {
        self.streamed_virtual_ranges(offsets, num_keys).iter().map(|&(s, e)| e - s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(tile_start: usize, tile_len: usize, chunk_start: usize, chunk_len: usize) -> Pass {
        Pass {
            component: 0,
            tile_start,
            tile_len,
            chunk_start,
            chunk_len,
            global_col: Vec::new(),
            global_row: Vec::new(),
        }
    }

    #[test]
    fn contiguous_offsets_stream_one_range() {
        let offsets: Vec<i64> = (-2..=2).collect();
        let p = pass(10, 4, 0, 5);
        // virtuals: 10..14 + (-2..=2) => 8..16 (exclusive 16)
        assert_eq!(p.streamed_virtual_ranges(&offsets, 100), vec![(8, 16)]);
        assert_eq!(p.streamed_key_count(&offsets, 100), 8);
    }

    #[test]
    fn gapped_offsets_stream_separate_ranges() {
        let offsets: Vec<i64> = vec![-10, 0, 10];
        let p = pass(20, 3, 0, 3);
        assert_eq!(p.streamed_virtual_ranges(&offsets, 100), vec![(10, 13), (20, 23), (30, 33)]);
    }

    #[test]
    fn overlapping_band_ranges_merge() {
        let offsets: Vec<i64> = vec![0, 2, 4];
        let p = pass(0, 4, 0, 3);
        // 0..4, 2..6, 4..8 merge into 0..8.
        assert_eq!(p.streamed_virtual_ranges(&offsets, 100), vec![(0, 8)]);
    }

    #[test]
    fn clipping_at_sequence_edges() {
        let offsets: Vec<i64> = (-4..=0).collect();
        let p = pass(0, 4, 0, 5);
        // virtuals -4..4 clipped to 0..4.
        assert_eq!(p.streamed_virtual_ranges(&offsets, 100), vec![(0, 4)]);
        // Clipping at the top end.
        let p = pass(98, 2, 4, 1); // offset 0 only
        assert_eq!(p.streamed_virtual_ranges(&offsets, 100), vec![(98, 100)]);
        // Entirely out of range.
        let p = pass(0, 2, 0, 1); // offset -4
        assert!(p.streamed_virtual_ranges(&offsets, 100).is_empty());
        assert_eq!(p.streamed_key_count(&offsets, 100), 0);
    }

    #[test]
    fn chunk_subsets_respected() {
        let offsets: Vec<i64> = vec![-8, -4, 0, 4, 8];
        let p = pass(50, 2, 1, 2); // offsets -4, 0
        assert_eq!(p.streamed_virtual_ranges(&offsets, 100), vec![(46, 48), (50, 52)]);
    }
}
