//! Canonicalization of hybrid patterns into dataflow components.
//!
//! A *component* is a unit the PE array can execute directly: a set of
//! query indices, a set of key indices, and a translation-invariant list of
//! offsets over **virtual** indices (positions within those sets). For
//! every component, the key attended by virtual query `p` at offset `o` is
//! `keys[p + o]` — the property SALO's diagonal K/V streaming requires.
//!
//! Canonicalization performs the paper's two transformations:
//!
//! * all undilated windows merge into one **direct** component (queries and
//!   keys are the identity mapping; offsets are the deduplicated union);
//! * each dilated window splits into `d` **class** components (the §4.2
//!   reordering): queries are residue class `r`, keys residue class
//!   `(r + lo) mod d`, and the dilated offsets become contiguous quotient
//!   offsets.
//!
//! Overlaps are resolved at this stage: a relative offset claimed by an
//! earlier window is dropped from later ones (every window covers *all*
//! queries via its classes, so ownership per offset is well defined). The
//! resulting components cover every window-kept `(i, j)` exactly once.

use salo_patterns::HybridPattern;

/// How a component maps virtual indices to sequence positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentKind {
    /// Identity mapping: virtual index == sequence index.
    Direct,
    /// A residue class of a dilated window: `class r` of modulus `d`.
    DilatedClass {
        /// The dilation (modulus).
        dilation: usize,
        /// Query residue class.
        query_class: usize,
        /// Key residue class.
        key_class: usize,
    },
}

/// One executable dataflow component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    kind: ComponentKind,
    /// Query sequence indices, ascending. Virtual query `p` is
    /// `queries[p]`.
    queries: Vec<usize>,
    /// Key sequence indices, ascending. Virtual key `q` is `keys[q]`.
    keys: Vec<usize>,
    /// Offsets over virtual indices, sorted ascending, deduplicated.
    offsets: Vec<i64>,
}

impl Component {
    /// The component's mapping kind.
    #[must_use]
    pub fn kind(&self) -> &ComponentKind {
        &self.kind
    }

    /// Query sequence indices (virtual -> actual).
    #[must_use]
    pub fn queries(&self) -> &[usize] {
        &self.queries
    }

    /// Key sequence indices (virtual -> actual).
    #[must_use]
    pub fn keys(&self) -> &[usize] {
        &self.keys
    }

    /// Virtual offsets, ascending.
    #[must_use]
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Number of virtual queries.
    #[must_use]
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// The actual key index attended by virtual query `p` at virtual
    /// offset `o`, if it falls inside the sequence.
    #[must_use]
    pub fn key_at(&self, p: usize, o: i64) -> Option<usize> {
        let vk = p as i64 + o;
        if vk < 0 || vk >= self.keys.len() as i64 {
            None
        } else {
            Some(self.keys[vk as usize])
        }
    }
}

/// Canonicalizes a pattern's window part into dataflow components.
///
/// Global tokens are *not* handled here — they are scheduled onto the
/// global PE row/column by the plan builder. The returned components cover
/// exactly the positions `(i, j)` with `pattern.window_allows(i, j)`,
/// each once.
#[must_use]
pub fn canonicalize(pattern: &HybridPattern) -> Vec<Component> {
    let n = pattern.n();
    let mut claimed: std::collections::HashSet<i64> = std::collections::HashSet::new();
    let mut components = Vec::new();

    // 1. Direct component: union of all undilated windows' offsets.
    let mut direct: Vec<i64> = pattern
        .windows()
        .iter()
        .filter(|w| !w.is_dilated())
        .flat_map(|w| w.offsets().collect::<Vec<_>>())
        .collect();
    direct.sort_unstable();
    direct.dedup();
    if !direct.is_empty() {
        claimed.extend(direct.iter().copied());
        components.push(Component {
            kind: ComponentKind::Direct,
            queries: (0..n).collect(),
            keys: (0..n).collect(),
            offsets: direct,
        });
    }

    // 2. Dilated windows, in declaration order, one component per class.
    for w in pattern.windows().iter().filter(|w| w.is_dilated()) {
        let d = w.dilation();
        // Offsets surviving ownership resolution (uniform per delta:
        // every window covers all queries, so a claimed delta is fully
        // shadowed).
        let deltas: Vec<i64> = w.offsets().filter(|delta| claimed.insert(*delta)).collect();
        if deltas.is_empty() {
            continue;
        }
        for r in 0..d.min(n) {
            let queries: Vec<usize> = (r..n).step_by(d).collect();
            // All deltas of one window share `delta mod d`, so the key
            // class is the same for every offset.
            let key_class = ((r as i64 + w.lo()).rem_euclid(d as i64)) as usize;
            let keys: Vec<usize> = (key_class..n).step_by(d).collect();
            // Quotient offsets: delta = (key_class - r) + o * d.
            let offsets: Vec<i64> = deltas
                .iter()
                .map(|&delta| {
                    let diff = delta - (key_class as i64 - r as i64);
                    debug_assert_eq!(diff.rem_euclid(d as i64), 0, "class arithmetic");
                    diff / d as i64
                })
                .collect();
            debug_assert!(offsets.windows(2).all(|ab| ab[0] < ab[1]), "sorted offsets");
            components.push(Component {
                kind: ComponentKind::DilatedClass { dilation: d, query_class: r, key_class },
                queries,
                keys,
                offsets,
            });
        }
    }

    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::{sparse_transformer, HybridPattern, Window};
    use std::collections::HashMap;

    /// Replays components and counts coverage of each (i, j).
    fn coverage(components: &[Component], n: usize) -> HashMap<(usize, usize), usize> {
        let mut cov = HashMap::new();
        for c in components {
            for (p, &qi) in c.queries().iter().enumerate() {
                for &o in c.offsets() {
                    if let Some(kj) = c.key_at(p, o) {
                        assert!(kj < n);
                        *cov.entry((qi, kj)).or_insert(0) += 1;
                    }
                }
            }
        }
        cov
    }

    fn assert_exact_cover(pattern: &HybridPattern) {
        let comps = canonicalize(pattern);
        let cov = coverage(&comps, pattern.n());
        for i in 0..pattern.n() {
            for j in 0..pattern.n() {
                let expected = usize::from(pattern.window_allows(i, j));
                let got = cov.get(&(i, j)).copied().unwrap_or(0);
                assert_eq!(got, expected, "coverage of ({i}, {j})");
            }
        }
    }

    #[test]
    fn direct_component_merges_sliding_windows() {
        let p = HybridPattern::builder(32)
            .window(Window::sliding(-2, 2).unwrap())
            .window(Window::sliding(0, 4).unwrap())
            .build()
            .unwrap();
        let comps = canonicalize(&p);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].offsets(), &[-2, -1, 0, 1, 2, 3, 4]);
        assert_exact_cover(&p);
    }

    #[test]
    fn dilated_window_splits_into_classes() {
        let p =
            HybridPattern::builder(20).window(Window::dilated(-6, 6, 3).unwrap()).build().unwrap();
        let comps = canonicalize(&p);
        assert_eq!(comps.len(), 3);
        for c in &comps {
            match c.kind() {
                ComponentKind::DilatedClass { dilation, query_class, key_class } => {
                    assert_eq!(*dilation, 3);
                    // lo = -6 ≡ 0 mod 3: key class == query class.
                    assert_eq!(key_class, query_class);
                }
                k => panic!("unexpected kind {k:?}"),
            }
            // Quotient offsets are the contiguous window -2..=2.
            assert_eq!(c.offsets(), &[-2, -1, 0, 1, 2]);
        }
        assert_exact_cover(&p);
    }

    #[test]
    fn misaligned_dilated_window_maps_key_class() {
        // lo = -4 with d = 3: key class = (r - 4) mod 3 != r.
        let p =
            HybridPattern::builder(21).window(Window::dilated(-4, 2, 3).unwrap()).build().unwrap();
        assert_exact_cover(&p);
        let comps = canonicalize(&p);
        for c in &comps {
            if let ComponentKind::DilatedClass { query_class, key_class, .. } = c.kind() {
                assert_eq!(*key_class, (query_class + 21 - 4).rem_euclid(3));
            }
        }
    }

    #[test]
    fn overlap_between_windows_claimed_once() {
        // Sliding [-3, 0] overlaps strided {-8, -4, 0} at 0 and -4... -4 is
        // not in [-3, 0]; 0 is. The strided window must drop offset 0.
        let p = HybridPattern::builder(40)
            .window(Window::sliding(-3, 0).unwrap())
            .window(Window::dilated(-8, 0, 4).unwrap())
            .build()
            .unwrap();
        assert_exact_cover(&p);
    }

    #[test]
    fn sparse_transformer_preset_covers_exactly() {
        let p = sparse_transformer(36, 4, 5).unwrap();
        assert_exact_cover(&p);
    }

    #[test]
    fn fully_shadowed_dilated_window_dropped() {
        // The dilated window's only offsets are already covered.
        let p = HybridPattern::builder(16)
            .window(Window::sliding(-4, 4).unwrap())
            .window(Window::dilated(-4, 4, 2).unwrap())
            .build()
            .unwrap();
        let comps = canonicalize(&p);
        assert_eq!(comps.len(), 1, "dilated window fully shadowed");
        assert_exact_cover(&p);
    }

    #[test]
    fn global_only_pattern_has_no_components() {
        let p = HybridPattern::builder(8).global_token(0).build().unwrap();
        assert!(canonicalize(&p).is_empty());
    }

    #[test]
    fn key_at_clips() {
        let p = HybridPattern::builder(10).window(Window::sliding(-2, 2).unwrap()).build().unwrap();
        let c = &canonicalize(&p)[0];
        assert_eq!(c.key_at(0, -1), None);
        assert_eq!(c.key_at(0, 0), Some(0));
        assert_eq!(c.key_at(9, 1), None);
        assert_eq!(c.key_at(9, 0), Some(9));
    }

    #[test]
    fn dilation_larger_than_sequence() {
        let p =
            HybridPattern::builder(4).window(Window::dilated(-8, 8, 8).unwrap()).build().unwrap();
        // Classes beyond n are not created; coverage still exact.
        assert_exact_cover(&p);
        let comps = canonicalize(&p);
        assert!(comps.len() <= 4);
    }
}
