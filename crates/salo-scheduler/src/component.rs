//! Canonicalization of hybrid patterns into dataflow components.
//!
//! A *component* is a unit the PE array can execute directly: a set of
//! query indices, a set of key indices, and a list of offsets over
//! **virtual** indices (positions within those sets). For the translation
//! invariant kinds, the key attended by virtual query `p` at offset `o` is
//! `keys[p + o]` — the property SALO's diagonal K/V streaming requires.
//!
//! Canonicalization performs the paper's two transformations:
//!
//! * all undilated windows merge into one **direct** component (queries and
//!   keys are the identity mapping; offsets are the deduplicated union);
//! * each dilated window splits into `d` **class** components (the §4.2
//!   reordering): queries are residue class `r`, keys residue class
//!   `(r + lo) mod d`, and the dilated offsets become contiguous quotient
//!   offsets.
//!
//! The pattern IR's residual support (block-sparse, random and explicit
//! support terms) canonicalizes into one **row-support** component: a
//! gather unit whose keys are a per-row arena and whose offsets are slot
//! indices `0..max_row_len`. Virtual query `p` at slot `o` reads
//! `keys[starts[p] + o]` when `o` is inside row `p`'s run — not a
//! diagonal stream, but the same pass/tile/chunk machinery applies.
//!
//! Overlaps are resolved at this stage: a relative offset claimed by an
//! earlier window is dropped from later ones (every window covers *all*
//! queries via its classes, so ownership per offset is well defined), and
//! the residual support excludes window- and global-owned cells by
//! normalization. The resulting components cover every array-kept `(i, j)`
//! exactly once.

use salo_patterns::HybridPattern;

/// How a component maps virtual indices to sequence positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentKind {
    /// Identity mapping: virtual index == sequence index.
    Direct,
    /// A residue class of a dilated window: `class r` of modulus `d`.
    DilatedClass {
        /// The dilation (modulus).
        dilation: usize,
        /// Query residue class.
        query_class: usize,
        /// Key residue class.
        key_class: usize,
    },
    /// A gather over the pattern's residual support: virtual query `p`'s
    /// keys are the arena slice `keys[starts[p]..starts[p + 1]]`, and
    /// offsets index slots within that slice.
    RowSupport {
        /// CSR bounds into the component's key arena; length
        /// `num_queries + 1`.
        starts: Vec<u32>,
    },
}

/// One executable dataflow component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    kind: ComponentKind,
    /// Query sequence indices, ascending. Virtual query `p` is
    /// `queries[p]`.
    queries: Vec<usize>,
    /// Key sequence indices, ascending. Virtual key `q` is `keys[q]`.
    keys: Vec<usize>,
    /// Offsets over virtual indices, sorted ascending, deduplicated.
    offsets: Vec<i64>,
}

impl Component {
    /// The component's mapping kind.
    #[must_use]
    pub fn kind(&self) -> &ComponentKind {
        &self.kind
    }

    /// Query sequence indices (virtual -> actual).
    #[must_use]
    pub fn queries(&self) -> &[usize] {
        &self.queries
    }

    /// Key sequence indices (virtual -> actual).
    #[must_use]
    pub fn keys(&self) -> &[usize] {
        &self.keys
    }

    /// Virtual offsets, ascending.
    #[must_use]
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Number of virtual queries.
    #[must_use]
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// The actual key index attended by virtual query `p` at virtual
    /// offset `o`, if it falls inside the sequence (diagonal kinds) or
    /// inside the row's support slots (row-support kind).
    #[must_use]
    pub fn key_at(&self, p: usize, o: i64) -> Option<usize> {
        match &self.kind {
            ComponentKind::Direct | ComponentKind::DilatedClass { .. } => {
                let vk = p as i64 + o;
                if vk < 0 || vk >= self.keys.len() as i64 {
                    None
                } else {
                    Some(self.keys[vk as usize])
                }
            }
            ComponentKind::RowSupport { starts } => {
                let lo = starts[p] as i64;
                let hi = starts[p + 1] as i64;
                if o < 0 || lo + o >= hi {
                    None
                } else {
                    Some(self.keys[(lo + o) as usize])
                }
            }
        }
    }

    /// For a row-support component, the number of support slots of virtual
    /// query `p`; for diagonal kinds, `None`.
    #[must_use]
    pub fn row_len(&self, p: usize) -> Option<usize> {
        match &self.kind {
            ComponentKind::RowSupport { starts } => Some((starts[p + 1] - starts[p]) as usize),
            _ => None,
        }
    }
}

/// Canonicalizes a pattern's array part — windows plus residual support —
/// into dataflow components.
///
/// Global tokens are *not* handled here — they are scheduled onto the
/// global PE row/column by the plan builder. The returned components cover
/// exactly the positions `(i, j)` with `pattern.array_allows(i, j)`,
/// each once: window ownership resolves window/window overlaps, and the
/// residual support is window- and global-disjoint by normalization.
#[must_use]
pub fn canonicalize(pattern: &HybridPattern) -> Vec<Component> {
    let n = pattern.n();
    let mut claimed: std::collections::HashSet<i64> = std::collections::HashSet::new();
    let mut components = Vec::new();

    // 1. Direct component: union of all undilated windows' offsets.
    let mut direct: Vec<i64> = pattern
        .windows()
        .iter()
        .filter(|w| !w.is_dilated())
        .flat_map(|w| w.offsets().collect::<Vec<_>>())
        .collect();
    direct.sort_unstable();
    direct.dedup();
    if !direct.is_empty() {
        claimed.extend(direct.iter().copied());
        components.push(Component {
            kind: ComponentKind::Direct,
            queries: (0..n).collect(),
            keys: (0..n).collect(),
            offsets: direct,
        });
    }

    // 2. Dilated windows, in declaration order, one component per class.
    for w in pattern.windows().iter().filter(|w| w.is_dilated()) {
        let d = w.dilation();
        // Offsets surviving ownership resolution (uniform per delta:
        // every window covers all queries, so a claimed delta is fully
        // shadowed).
        let deltas: Vec<i64> = w.offsets().filter(|delta| claimed.insert(*delta)).collect();
        if deltas.is_empty() {
            continue;
        }
        for r in 0..d.min(n) {
            let queries: Vec<usize> = (r..n).step_by(d).collect();
            // All deltas of one window share `delta mod d`, so the key
            // class is the same for every offset.
            let key_class = ((r as i64 + w.lo()).rem_euclid(d as i64)) as usize;
            let keys: Vec<usize> = (key_class..n).step_by(d).collect();
            // Quotient offsets: delta = (key_class - r) + o * d.
            let offsets: Vec<i64> = deltas
                .iter()
                .map(|&delta| {
                    let diff = delta - (key_class as i64 - r as i64);
                    debug_assert_eq!(diff.rem_euclid(d as i64), 0, "class arithmetic");
                    diff / d as i64
                })
                .collect();
            debug_assert!(offsets.windows(2).all(|ab| ab[0] < ab[1]), "sorted offsets");
            components.push(Component {
                kind: ComponentKind::DilatedClass { dilation: d, query_class: r, key_class },
                queries,
                keys,
                offsets,
            });
        }
    }

    // 3. Residual support (block/random/support terms): one gather
    // component whose keys are the flattened per-row arena.
    let residual = pattern.residual();
    if !residual.is_empty() {
        let mut queries = Vec::new();
        let mut keys = Vec::new();
        let mut starts = vec![0u32];
        let mut max_len = 0usize;
        for i in 0..n {
            let len = residual.row_len(i);
            if len == 0 {
                continue;
            }
            queries.push(i);
            residual.extend_row_keys(i, &mut keys);
            starts.push(u32::try_from(keys.len()).expect("arena fits u32"));
            max_len = max_len.max(len);
        }
        components.push(Component {
            kind: ComponentKind::RowSupport { starts },
            queries,
            keys,
            offsets: (0..max_len as i64).collect(),
        });
    }

    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use salo_patterns::{sparse_transformer, HybridPattern, Window};
    use std::collections::HashMap;

    /// Replays components and counts coverage of each (i, j).
    fn coverage(components: &[Component], n: usize) -> HashMap<(usize, usize), usize> {
        let mut cov = HashMap::new();
        for c in components {
            for (p, &qi) in c.queries().iter().enumerate() {
                for &o in c.offsets() {
                    if let Some(kj) = c.key_at(p, o) {
                        assert!(kj < n);
                        *cov.entry((qi, kj)).or_insert(0) += 1;
                    }
                }
            }
        }
        cov
    }

    fn assert_exact_cover(pattern: &HybridPattern) {
        let comps = canonicalize(pattern);
        let cov = coverage(&comps, pattern.n());
        for i in 0..pattern.n() {
            for j in 0..pattern.n() {
                let expected = usize::from(pattern.array_allows(i, j));
                let got = cov.get(&(i, j)).copied().unwrap_or(0);
                assert_eq!(got, expected, "coverage of ({i}, {j})");
            }
        }
    }

    #[test]
    fn direct_component_merges_sliding_windows() {
        let p = HybridPattern::builder(32)
            .window(Window::sliding(-2, 2).unwrap())
            .window(Window::sliding(0, 4).unwrap())
            .build()
            .unwrap();
        let comps = canonicalize(&p);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].offsets(), &[-2, -1, 0, 1, 2, 3, 4]);
        assert_exact_cover(&p);
    }

    #[test]
    fn dilated_window_splits_into_classes() {
        let p =
            HybridPattern::builder(20).window(Window::dilated(-6, 6, 3).unwrap()).build().unwrap();
        let comps = canonicalize(&p);
        assert_eq!(comps.len(), 3);
        for c in &comps {
            match c.kind() {
                ComponentKind::DilatedClass { dilation, query_class, key_class } => {
                    assert_eq!(*dilation, 3);
                    // lo = -6 ≡ 0 mod 3: key class == query class.
                    assert_eq!(key_class, query_class);
                }
                k => panic!("unexpected kind {k:?}"),
            }
            // Quotient offsets are the contiguous window -2..=2.
            assert_eq!(c.offsets(), &[-2, -1, 0, 1, 2]);
        }
        assert_exact_cover(&p);
    }

    #[test]
    fn misaligned_dilated_window_maps_key_class() {
        // lo = -4 with d = 3: key class = (r - 4) mod 3 != r.
        let p =
            HybridPattern::builder(21).window(Window::dilated(-4, 2, 3).unwrap()).build().unwrap();
        assert_exact_cover(&p);
        let comps = canonicalize(&p);
        for c in &comps {
            if let ComponentKind::DilatedClass { query_class, key_class, .. } = c.kind() {
                assert_eq!(*key_class, (query_class + 21 - 4).rem_euclid(3));
            }
        }
    }

    #[test]
    fn overlap_between_windows_claimed_once() {
        // Sliding [-3, 0] overlaps strided {-8, -4, 0} at 0 and -4... -4 is
        // not in [-3, 0]; 0 is. The strided window must drop offset 0.
        let p = HybridPattern::builder(40)
            .window(Window::sliding(-3, 0).unwrap())
            .window(Window::dilated(-8, 0, 4).unwrap())
            .build()
            .unwrap();
        assert_exact_cover(&p);
    }

    #[test]
    fn sparse_transformer_preset_covers_exactly() {
        let p = sparse_transformer(36, 4, 5).unwrap();
        assert_exact_cover(&p);
    }

    #[test]
    fn fully_shadowed_dilated_window_dropped() {
        // The dilated window's only offsets are already covered.
        let p = HybridPattern::builder(16)
            .window(Window::sliding(-4, 4).unwrap())
            .window(Window::dilated(-4, 4, 2).unwrap())
            .build()
            .unwrap();
        let comps = canonicalize(&p);
        assert_eq!(comps.len(), 1, "dilated window fully shadowed");
        assert_exact_cover(&p);
    }

    #[test]
    fn global_only_pattern_has_no_components() {
        let p = HybridPattern::builder(8).global_token(0).build().unwrap();
        assert!(canonicalize(&p).is_empty());
    }

    #[test]
    fn key_at_clips() {
        let p = HybridPattern::builder(10).window(Window::sliding(-2, 2).unwrap()).build().unwrap();
        let c = &canonicalize(&p)[0];
        assert_eq!(c.key_at(0, -1), None);
        assert_eq!(c.key_at(0, 0), Some(0));
        assert_eq!(c.key_at(9, 1), None);
        assert_eq!(c.key_at(9, 0), Some(9));
    }

    #[test]
    fn row_support_component_covers_residual_exactly() {
        use salo_patterns::{BlockLayout, PatternTerm};
        let p = HybridPattern::builder(24)
            .window(Window::symmetric(3).unwrap())
            .global_token(0)
            .term(PatternTerm::BlockSparse { block_rows: 8, layout: BlockLayout::Diagonal })
            .term(PatternTerm::RandomBlocks { count: 2, seed: 11 })
            .build()
            .unwrap();
        assert_exact_cover(&p);
        let comps = canonicalize(&p);
        let rs = comps
            .iter()
            .find(|c| matches!(c.kind(), ComponentKind::RowSupport { .. }))
            .expect("residual component present");
        // Gather semantics: slot o of virtual query p reads the arena, and
        // slots past the row's length are inactive.
        for p_idx in 0..rs.num_queries() {
            let len = rs.row_len(p_idx).unwrap();
            assert!(len > 0, "only non-empty rows become virtual queries");
            for o in 0..len as i64 {
                assert!(rs.key_at(p_idx, o).is_some());
            }
            assert_eq!(rs.key_at(p_idx, len as i64), None);
            assert_eq!(rs.key_at(p_idx, -1), None);
        }
    }

    #[test]
    fn pure_residual_pattern_has_single_gather_component() {
        use salo_patterns::{BlockLayout, PatternTerm};
        let p = HybridPattern::builder(16)
            .term(PatternTerm::BlockSparse { block_rows: 4, layout: BlockLayout::Diagonal })
            .build()
            .unwrap();
        let comps = canonicalize(&p);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].num_queries(), 16);
        assert_eq!(comps[0].offsets(), &[0, 1, 2, 3]);
        assert_exact_cover(&p);
    }

    #[test]
    fn dilation_larger_than_sequence() {
        let p =
            HybridPattern::builder(4).window(Window::dilated(-8, 8, 8).unwrap()).build().unwrap();
        // Classes beyond n are not created; coverage still exact.
        assert_exact_cover(&p);
        let comps = canonicalize(&p);
        assert!(comps.len() <= 4);
    }
}
