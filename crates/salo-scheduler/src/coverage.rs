//! Plan auditing: replay a plan and verify exactly-once coverage.

use salo_patterns::HybridPattern;

use crate::pass::SupplementalKind;
use crate::ExecutionPlan;

/// The result of replaying a plan against its source pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Kept positions the plan never computes.
    pub missing: Vec<(usize, usize)>,
    /// Positions the plan computes more than once (with their counts).
    pub duplicated: Vec<(usize, usize, usize)>,
    /// Positions the plan computes that the pattern masks out.
    pub spurious: Vec<(usize, usize)>,
}

impl CoverageReport {
    /// Whether the plan covers the pattern exactly once everywhere.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.missing.is_empty() && self.duplicated.is_empty() && self.spurious.is_empty()
    }
}

/// Replays every pass (array cells, global-column duties, global-row
/// duties, supplemental passes) and compares the computed multiset of
/// `(i, j)` positions against the pattern.
///
/// Cost is `O(n^2)` memory and `O(total work)` time — intended for tests
/// and debugging, not the execution path.
#[must_use]
pub fn verify_coverage(plan: &ExecutionPlan, pattern: &HybridPattern) -> CoverageReport {
    let n = plan.n();
    assert_eq!(n, pattern.n(), "plan/pattern length mismatch");
    let mut counts = vec![0u32; n * n];

    // Array cells.
    for pass in plan.passes() {
        let comp = &plan.components()[pass.component];
        let chunk = &comp.offsets()[pass.chunk_start..pass.chunk_start + pass.chunk_len];
        for u in 0..pass.tile_len {
            let p = pass.tile_start + u;
            let qi = comp.queries()[p];
            if plan.is_global(qi) {
                continue;
            }
            for &o in chunk {
                if let Some(kj) = comp.key_at(p, o) {
                    if !plan.is_global(kj) {
                        counts[qi * n + kj] += 1;
                    }
                }
            }
        }
    }

    // Global-column duties: (query, token) pairs.
    for pass in plan.passes() {
        for duty in &pass.global_col {
            for &q in &duty.fresh_queries {
                counts[q as usize * n + duty.token] += 1;
            }
        }
    }
    // Global-row duties: (token, key) pairs.
    for pass in plan.passes() {
        for duty in &pass.global_row {
            for &k in &duty.fresh_keys {
                counts[duty.token * n + k as usize] += 1;
            }
        }
    }
    // Supplemental passes.
    for sup in plan.supplemental() {
        match sup.kind {
            SupplementalKind::GlobalRow { token, start, end } => {
                for k in start..end {
                    counts[token * n + k] += 1;
                }
            }
            SupplementalKind::GlobalCol { token, start, end } => {
                for q in start..end {
                    counts[q * n + token] += 1;
                }
            }
        }
    }

    let mut report =
        CoverageReport { missing: Vec::new(), duplicated: Vec::new(), spurious: Vec::new() };
    for i in 0..n {
        for j in 0..n {
            let c = counts[i * n + j] as usize;
            let kept = pattern.allows(i, j);
            match (kept, c) {
                (true, 0) => report.missing.push((i, j)),
                (true, 1) => {}
                (true, c) => report.duplicated.push((i, j, c)),
                (false, 0) => {}
                (false, _) => report.spurious.push((i, j)),
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HardwareMeta;
    use salo_patterns::{
        grid_2d, longformer, sliding_only, sparse_transformer, star_transformer, HybridPattern,
        Window,
    };

    fn assert_exact(pattern: &HybridPattern, hw: HardwareMeta) {
        let plan = ExecutionPlan::build(pattern, hw).expect("plan");
        let report = verify_coverage(&plan, pattern);
        assert!(
            report.is_exact(),
            "missing {} duplicated {} spurious {} (first: {:?} / {:?} / {:?})",
            report.missing.len(),
            report.duplicated.len(),
            report.spurious.len(),
            report.missing.first(),
            report.duplicated.first(),
            report.spurious.first()
        );
    }

    #[test]
    fn longformer_small_exact() {
        assert_exact(&longformer(96, 16, 1).unwrap(), HardwareMeta::new(8, 8, 1, 1).unwrap());
    }

    #[test]
    fn longformer_default_hw_exact() {
        assert_exact(&longformer(256, 64, 2).unwrap(), HardwareMeta::default());
    }

    #[test]
    fn vil_grid_exact() {
        assert_exact(&grid_2d(12, 12, 5, 5, 1).unwrap(), HardwareMeta::new(16, 16, 1, 1).unwrap());
    }

    #[test]
    fn star_transformer_exact() {
        assert_exact(&star_transformer(64).unwrap(), HardwareMeta::new(8, 8, 1, 1).unwrap());
    }

    #[test]
    fn sparse_transformer_exact() {
        assert_exact(
            &sparse_transformer(60, 5, 4).unwrap(),
            HardwareMeta::new(8, 8, 1, 1).unwrap(),
        );
    }

    #[test]
    fn dilated_window_exact() {
        let p = HybridPattern::builder(50)
            .window(Window::dilated(-12, 12, 4).unwrap())
            .global_token(7)
            .build()
            .unwrap();
        assert_exact(&p, HardwareMeta::new(4, 4, 1, 1).unwrap());
    }

    #[test]
    fn global_only_exact() {
        let p = HybridPattern::builder(40).global_tokens([3, 17]).build().unwrap();
        assert_exact(&p, HardwareMeta::new(8, 8, 1, 1).unwrap());
    }

    #[test]
    fn many_globals_force_supplemental_and_stay_exact() {
        // More global tokens than the window passes can serve.
        let p = longformer(64, 4, 6).unwrap();
        let hw = HardwareMeta::new(16, 4, 1, 1).unwrap();
        let plan = ExecutionPlan::build(&p, hw).unwrap();
        let report = verify_coverage(&plan, &p);
        assert!(report.is_exact(), "missing {:?}", report.missing.first());
    }

    #[test]
    fn tiny_array_exact() {
        assert_exact(&longformer(30, 6, 1).unwrap(), HardwareMeta::new(2, 3, 1, 1).unwrap());
    }

    #[test]
    fn window_only_no_globals_exact() {
        assert_exact(&sliding_only(48, 9).unwrap(), HardwareMeta::new(8, 8, 1, 1).unwrap());
    }

    #[test]
    fn mixed_overlapping_windows_exact() {
        let p = HybridPattern::builder(40)
            .window(Window::sliding(-3, 3).unwrap())
            .window(Window::dilated(-9, 9, 3).unwrap())
            .window(Window::dilated(-8, 8, 2).unwrap())
            .global_token(0)
            .build()
            .unwrap();
        assert_exact(&p, HardwareMeta::new(8, 8, 1, 1).unwrap());
    }
}
