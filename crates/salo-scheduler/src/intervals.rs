//! A sorted set of disjoint half-open index ranges.
//!
//! Used by the global-token scheduler to track which keys/queries a global
//! PE unit has already seen, so that every `(global token, position)` pair
//! is computed exactly once across passes (§5.2).

/// A set of `usize` indices stored as sorted, disjoint, non-adjacent
/// half-open ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    ranges: Vec<(usize, usize)>,
}

impl IntervalSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `index` is in the set.
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        self.ranges
            .binary_search_by(|&(s, e)| {
                if index < s {
                    std::cmp::Ordering::Greater
                } else if index >= e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Inserts a single index; returns `true` if it was fresh.
    pub fn insert(&mut self, index: usize) -> bool {
        self.insert_range(index, index + 1) == 1
    }

    /// Inserts `[start, end)`; returns how many indices were fresh.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn insert_range(&mut self, start: usize, end: usize) -> usize {
        assert!(start <= end, "inverted range");
        if start == end {
            return 0;
        }
        // Find all ranges overlapping or adjacent to [start, end).
        let mut lo = start;
        let mut hi = end;
        let first = self.ranges.partition_point(|&(_, e)| e < start);
        let mut last = first;
        let mut already = 0usize;
        while last < self.ranges.len() && self.ranges[last].0 <= end {
            let (s, e) = self.ranges[last];
            already += e.min(end).saturating_sub(s.max(start));
            lo = lo.min(s);
            hi = hi.max(e);
            last += 1;
        }
        self.ranges.splice(first..last, std::iter::once((lo, hi)));
        (end - start) - already
    }

    /// Number of indices in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether the set covers all of `[0, n)`.
    #[must_use]
    pub fn covers_all(&self, n: usize) -> bool {
        n == 0 || (self.ranges.len() == 1 && self.ranges[0].0 == 0 && self.ranges[0].1 >= n)
    }

    /// The gaps of the set within `[0, n)`, as ranges.
    #[must_use]
    pub fn gaps(&self, n: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut cursor = 0usize;
        for &(s, e) in &self.ranges {
            if s >= n {
                break;
            }
            if s > cursor {
                out.push((cursor, s.min(n)));
            }
            cursor = cursor.max(e);
        }
        if cursor < n {
            out.push((cursor, n));
        }
        out
    }

    /// The stored ranges.
    #[must_use]
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = IntervalSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merge_adjacent_ranges() {
        let mut s = IntervalSet::new();
        assert_eq!(s.insert_range(0, 4), 4);
        assert_eq!(s.insert_range(4, 8), 4);
        assert_eq!(s.ranges().len(), 1);
        assert_eq!(s.ranges()[0], (0, 8));
    }

    #[test]
    fn overlapping_inserts_count_fresh_only() {
        let mut s = IntervalSet::new();
        assert_eq!(s.insert_range(10, 20), 10);
        assert_eq!(s.insert_range(15, 25), 5);
        assert_eq!(s.insert_range(0, 40), 25);
        assert_eq!(s.len(), 40);
        assert!(s.covers_all(40));
        assert!(!s.covers_all(41));
    }

    #[test]
    fn bridge_between_ranges() {
        let mut s = IntervalSet::new();
        s.insert_range(0, 3);
        s.insert_range(7, 10);
        assert_eq!(s.ranges().len(), 2);
        assert_eq!(s.insert_range(2, 8), 4); // 3..7 fresh
        assert_eq!(s.ranges(), &[(0, 10)]);
    }

    #[test]
    fn gaps_enumerated() {
        let mut s = IntervalSet::new();
        s.insert_range(2, 4);
        s.insert_range(8, 9);
        assert_eq!(s.gaps(12), vec![(0, 2), (4, 8), (9, 12)]);
        assert_eq!(s.gaps(3), vec![(0, 2)]);
        let empty = IntervalSet::new();
        assert_eq!(empty.gaps(3), vec![(0, 3)]);
        assert!(empty.gaps(0).is_empty());
    }

    #[test]
    fn empty_range_insert_is_noop() {
        let mut s = IntervalSet::new();
        assert_eq!(s.insert_range(5, 5), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn scattered_then_filled() {
        let mut s = IntervalSet::new();
        for i in (0..100).step_by(2) {
            s.insert(i);
        }
        assert_eq!(s.len(), 50);
        assert_eq!(s.ranges().len(), 50);
        for i in (1..100).step_by(2) {
            s.insert(i);
        }
        assert_eq!(s.ranges().len(), 1);
        assert!(s.covers_all(100));
    }
}
