//! Property tests: every plan covers its pattern exactly once, on random
//! patterns and random hardware geometries.

use proptest::prelude::*;
use salo_patterns::{HybridPattern, Window};
use salo_scheduler::{
    merge_f64, verify_coverage, ExecutionPlan, HardwareMeta, PartF64, Permutation,
};

fn arb_window() -> impl Strategy<Value = Window> {
    (-12i64..12, 1usize..5, 0usize..8).prop_map(|(lo, dil, width)| {
        Window::dilated(lo, lo + (width as i64) * dil as i64, dil).expect("window")
    })
}

fn arb_pattern() -> impl Strategy<Value = HybridPattern> {
    (6usize..48, prop::collection::vec(arb_window(), 0..4), prop::collection::vec(0usize..6, 0..3))
        .prop_filter_map("non-empty pattern", |(n, windows, globals)| {
            let globals: Vec<usize> = globals.into_iter().filter(|&g| g < n).collect();
            if windows.is_empty() && globals.is_empty() {
                return None;
            }
            HybridPattern::builder(n).windows(windows).global_tokens(globals).build().ok()
        })
}

fn arb_hw() -> impl Strategy<Value = HardwareMeta> {
    (1usize..12, 1usize..12, 0usize..3, 0usize..3)
        .prop_map(|(r, c, gr, gc)| HardwareMeta::new(r, c, gr, gc).expect("hw"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fundamental invariant: every kept (i, j) computed exactly once.
    #[test]
    fn plans_cover_exactly_once(pattern in arb_pattern(), hw in arb_hw()) {
        // Patterns needing global units require at least one of each.
        let hw = if pattern.globals().is_empty() {
            hw
        } else {
            HardwareMeta::new(hw.pe_rows, hw.pe_cols, hw.global_rows.max(1), hw.global_cols.max(1))
                .expect("hw")
        };
        match ExecutionPlan::build(&pattern, hw) {
            Ok(plan) => {
                let report = verify_coverage(&plan, &pattern);
                prop_assert!(
                    report.is_exact(),
                    "missing {:?} duplicated {:?} spurious {:?}",
                    report.missing.first(),
                    report.duplicated.first(),
                    report.spurious.first()
                );
            }
            Err(salo_scheduler::SchedulerError::EmptyPlan) => {
                // Acceptable only when the pattern truly keeps nothing.
                prop_assert_eq!(pattern.nnz(), 0);
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// Plan statistics are internally consistent.
    #[test]
    fn stats_consistent(pattern in arb_pattern()) {
        let hw = HardwareMeta::new(4, 4, 1, 1).expect("hw");
        if let Ok(plan) = ExecutionPlan::build(&pattern, hw) {
            let stats = plan.stats();
            prop_assert!(stats.occupancy >= 0.0 && stats.occupancy <= 1.0);
            prop_assert!(stats.active_cells <= stats.cell_slots);
            prop_assert!(stats.streamed_keys <= stats.naive_key_loads.max(1) * 2);
            let per_pass: u64 = plan.passes().iter().map(|p| plan.pass_active_cells(p)).sum();
            prop_assert_eq!(per_pass, stats.active_cells);
        }
    }

    /// Eq. 2 merging of arbitrary row splits equals the monolithic softmax.
    #[test]
    fn merge_equals_monolithic(
        scores in prop::collection::vec(-4.0f64..4.0, 1..24),
        splits in prop::collection::vec(any::<bool>(), 24),
        dim in 1usize..4,
    ) {
        let rows: Vec<Vec<f64>> = (0..scores.len())
            .map(|k| (0..dim).map(|c| ((k * 7 + c * 3) % 11) as f64 - 5.0).collect())
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let full = PartF64::from_scores(&scores, &refs, dim);

        // Split at the flagged boundaries and merge left to right.
        let mut merged = PartF64 { weight: 0.0, out: vec![0.0; dim] };
        let mut start = 0;
        for end in 1..=scores.len() {
            if end == scores.len() || splits[end % splits.len()] {
                let part = PartF64::from_scores(&scores[start..end], &refs[start..end], dim);
                merged = merge_f64(&merged, &part);
                start = end;
            }
        }
        for (m, f) in merged.out.iter().zip(&full.out) {
            prop_assert!((m - f).abs() < 1e-9, "{m} vs {f}");
        }
        prop_assert!((merged.weight - full.weight).abs() < 1e-9);
    }

    /// Dilation grouping permutations round-trip.
    #[test]
    fn permutation_round_trip(n in 1usize..80, d in 1usize..7) {
        let p = Permutation::dilation_grouping(n, d);
        let data: Vec<usize> = (0..n).collect();
        let there = p.apply(&data);
        let back = p.inverse().apply(&there);
        prop_assert_eq!(back, data);
    }
}
