//! The gateway's length-prefixed binary wire protocol.
//!
//! A frame is `u32` little-endian payload length followed by the payload:
//!
//! ```text
//! +----------+---------+--------+------------+--------------+------
//! | len: u32 | ver: u8 | op: u8 | tenant:u64 | request:u64  | body
//! +----------+---------+--------+------------+--------------+------
//! ```
//!
//! Everything is hand-rolled little-endian primitives — no serde, no
//! bincode — because the decode side faces the network: every length is
//! validated against the bytes actually present *before* allocation, and
//! every malformed input maps to a typed [`WireError`], never a panic.
//! `f32`/`f64` travel as their IEEE-754 bit patterns, so a round trip is
//! bit-exact — the property the socket-vs-in-process decode identity
//! tests rely on.
//!
//! Patterns ride as their [`PatternTerm`] IR (PR 9): `from_terms` is
//! idempotent on `terms()`, so decoding reproduces the sender's pattern
//! exactly, fingerprint included. [`ServeReport`]s ride in full —
//! log-bucket histograms as sparse `(index, count)` pairs — so a
//! multi-process bench can merge shard reports bucket-exactly with
//! [`ServeReport::merged_with`].

use std::collections::BTreeMap;
use std::io::{Read, Write};

use salo_core::{HeadStep, TokenQkv};
use salo_kernels::{Matrix, Qkv};
use salo_patterns::{AttentionShape, BlockLayout, HybridPattern, PatternTerm, SupportRuns, Window};
use salo_serve::{CacheStats, HistogramSnapshot, LatencyStats, ServeReport, TenantCounters};
use salo_trace::NUM_BUCKETS;

/// Protocol version carried in every frame header.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame's payload length. Frames claiming more are
/// refused before any allocation happens.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Fixed header bytes after the length prefix: version, opcode, tenant,
/// request id.
pub const HEADER_LEN: usize = 1 + 1 + 8 + 8;

/// Frame header: who sent it and which request it belongs to. Responses
/// echo the request's header, so a pipelining client can match replies
/// by `request_id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Tenant the request is accounted (and queued) under.
    pub tenant: u64,
    /// Client-chosen correlation id, echoed on the response.
    pub request_id: u64,
}

/// Decode failures. Every malformed, truncated or oversized input maps
/// here — the protocol surface never panics and never over-allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field it declared.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually left.
        have: usize,
    },
    /// The payload decoded fully but bytes remain.
    TrailingBytes {
        /// Bytes left over after the message.
        remaining: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    OversizedFrame {
        /// Claimed payload length.
        len: usize,
        /// The protocol bound.
        max: usize,
    },
    /// The opcode byte is not one this protocol version defines.
    UnknownOpcode(u8),
    /// The version byte does not match [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// A field decoded but fails domain validation (bad window bounds,
    /// inconsistent matrix, invalid UTF-8, ...).
    BadValue(String),
    /// The underlying socket/stream failed (EOF, deadline, reset).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: field needs {needed} bytes, {have} left")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
            WireError::OversizedFrame { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadVersion(v) => {
                write!(f, "protocol version {v}, expected {PROTOCOL_VERSION}")
            }
            WireError::BadValue(reason) => write!(f, "invalid field: {reason}"),
            WireError::Io(kind) => write!(f, "i/o error: {kind}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.kind())
    }
}

/// Typed error codes an [`ErrorFrame`] can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame could not be decoded; the connection closes after this.
    BadFrame,
    /// Admission refused the request: a tenant or global queue bound was
    /// hit. Carries a retry hint.
    Overloaded,
    /// The gateway is draining and accepts no new work.
    Draining,
    /// The request's service deadline expired (in queue or waiting on a
    /// session event).
    TimedOut,
    /// The referenced wire session is unknown to this connection.
    UnknownSession,
    /// The request is internally inconsistent (serve-side validation).
    Invalid,
    /// Execution failed inside the runtime.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::Overloaded => 2,
            ErrorCode::Draining => 3,
            ErrorCode::TimedOut => 4,
            ErrorCode::UnknownSession => 5,
            ErrorCode::Invalid => 6,
            ErrorCode::Internal => 7,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::Overloaded,
            3 => ErrorCode::Draining,
            4 => ErrorCode::TimedOut,
            5 => ErrorCode::UnknownSession,
            6 => ErrorCode::Invalid,
            7 => ErrorCode::Internal,
            other => return Err(WireError::BadValue(format!("error code {other}"))),
        })
    }
}

/// A typed error response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorFrame {
    /// What went wrong, as a machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// For [`ErrorCode::Overloaded`]: how long the client should back
    /// off before retrying, in milliseconds. A hint, not a promise.
    pub retry_after_ms: Option<u64>,
}

/// A client-to-gateway request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// One-shot prefill of a full attention layer.
    Prefill {
        /// The hybrid sparsity pattern.
        pattern: HybridPattern,
        /// Sequence/head dimensions.
        shape: AttentionShape,
        /// Per-head inputs.
        heads: Vec<Qkv>,
    },
    /// Open a streaming decode session.
    Open {
        /// Pattern over the session's full capacity.
        pattern: HybridPattern,
        /// Head dimension.
        head_dim: usize,
        /// Number of heads.
        num_heads: usize,
        /// Per-head prompt rows.
        prompt: Vec<Qkv>,
    },
    /// Decode one token of an open session.
    Step {
        /// The wire session id from [`Response::Opened`].
        session: u64,
        /// The new position's per-head `(q, k, v)` rows.
        token: Vec<TokenQkv>,
    },
    /// Close a session; the reply is its terminal [`Response::Closed`].
    Close {
        /// The wire session id.
        session: u64,
    },
    /// Ask for the JSON export of the server's live metrics registry.
    Stats,
    /// Drain the gateway and reply with the final wire-encoded
    /// [`ServeReport`] — the multi-process bench's collection opcode.
    Shutdown,
}

/// One head of a [`Response::PrefillDone`], in accelerator-exact form:
/// the dequantized output plus the 16-bit raw rows and Q.16 softmax
/// weights, so a client can assert bit-identity against an in-process
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefillHead {
    /// The attention output, dequantized to `f32`.
    pub output: Matrix<f32>,
    /// The 16-bit accelerator-format output (raw bit patterns).
    pub raw: Matrix<i16>,
    /// Final per-row softmax weights (Q.16).
    pub weights_q16: Vec<i64>,
}

/// One head of a [`Response::Stepped`], mirroring
/// [`salo_core::HeadStep`] with the raw row as bit patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct WireHeadStep {
    /// The position's output row, in `f32`.
    pub output: Vec<f32>,
    /// The 16-bit accelerator-format row (present on fixed-point
    /// backends).
    pub raw: Option<Vec<i16>>,
    /// The row's softmax weight `W = Σ exp` (Q.16).
    pub weight_q16: Option<i64>,
    /// MAC saturation events this token caused.
    pub saturation_events: u64,
}

impl From<&HeadStep> for WireHeadStep {
    fn from(h: &HeadStep) -> Self {
        WireHeadStep {
            output: h.output.clone(),
            raw: h.raw.as_ref().map(|r| r.iter().map(|x| x.raw()).collect()),
            weight_q16: h.weight_q16,
            saturation_events: h.saturation_events,
        }
    }
}

/// A gateway-to-client response. The header's `request_id` echoes the
/// request it answers; a terminal [`Response::Closed`] sent during drain
/// carries the id of the session's original open.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A [`Request::Prefill`] completed.
    PrefillDone {
        /// Per-head outputs.
        heads: Vec<PrefillHead>,
        /// Simulated layer latency (seconds).
        sim_time_s: f64,
        /// Simulated layer energy (joules).
        sim_energy_j: f64,
    },
    /// A [`Request::Open`] completed.
    Opened {
        /// Wire session id for subsequent [`Request::Step`]s.
        session: u64,
        /// First decodable position.
        min_step: u64,
        /// Position the next step will produce.
        position: u64,
        /// Sequence capacity.
        capacity: u64,
    },
    /// A [`Request::Step`] completed.
    Stepped {
        /// The wire session id.
        session: u64,
        /// The position this step produced.
        position: u64,
        /// Per-head output rows.
        heads: Vec<WireHeadStep>,
    },
    /// The session is closed — in reply to [`Request::Close`], or
    /// terminally during a drain.
    Closed {
        /// The wire session id.
        session: u64,
        /// Tokens the session had ingested; `None` if the count died
        /// with its worker.
        position: Option<u64>,
    },
    /// The metrics-registry JSON export.
    Stats {
        /// Output of [`MetricsRegistry::export_json`](salo_trace::MetricsRegistry::export_json).
        json: String,
    },
    /// The drained server's final report, in reply to
    /// [`Request::Shutdown`].
    Report {
        /// The full serve report, histograms included (boxed: a report
        /// is ~10x the size of any other reply variant).
        report: Box<ServeReport>,
    },
    /// The request failed with a typed error.
    Error(ErrorFrame),
}

// ---------------------------------------------------------------------
// primitive encoder / decoder
// ---------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(op: u8, header: Header) -> Self {
        // Reserve the length prefix; finish() patches it.
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.push(PROTOCOL_VERSION);
        buf.push(op);
        buf.extend_from_slice(&header.tenant.to_le_bytes());
        buf.extend_from_slice(&header.request_id.to_le_bytes());
        Enc { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn f32s(&mut self, v: &[f32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f32(x);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        let len = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&len.to_le_bytes());
        self.buf
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { needed: n, have: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn i16(&mut self) -> Result<i16, WireError> {
        Ok(i16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// An element count that promises `count * width` payload bytes:
    /// checked against the bytes actually left *before* any allocation,
    /// so a hostile length cannot balloon memory.
    fn count(&mut self, width: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let needed = n.saturating_mul(width.max(1));
        if needed > self.remaining() {
            return Err(WireError::Truncated { needed, have: self.remaining() });
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadValue("utf-8".into()))
    }

    fn f32s(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.count(4)?;
        (0..n).map(|_| self.f32()).collect()
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() > 0 {
            return Err(WireError::TrailingBytes { remaining: self.remaining() });
        }
        Ok(())
    }
}

fn bad(reason: impl std::fmt::Display) -> WireError {
    WireError::BadValue(reason.to_string())
}

// ---------------------------------------------------------------------
// domain codecs
// ---------------------------------------------------------------------

fn put_matrix_f32(e: &mut Enc, m: &Matrix<f32>) {
    e.u32(m.rows() as u32);
    e.u32(m.cols() as u32);
    for &x in m.as_slice() {
        e.f32(x);
    }
}

fn get_matrix_f32(d: &mut Dec<'_>) -> Result<Matrix<f32>, WireError> {
    let rows = d.u32()? as usize;
    let cols = d.u32()? as usize;
    let needed = rows.saturating_mul(cols).saturating_mul(4);
    if needed > d.remaining() {
        return Err(WireError::Truncated { needed, have: d.remaining() });
    }
    let data = (0..rows * cols).map(|_| d.f32()).collect::<Result<Vec<_>, _>>()?;
    Matrix::from_vec(rows, cols, data).map_err(bad)
}

fn put_matrix_i16(e: &mut Enc, m: &Matrix<i16>) {
    e.u32(m.rows() as u32);
    e.u32(m.cols() as u32);
    for &x in m.as_slice() {
        e.i16(x);
    }
}

fn get_matrix_i16(d: &mut Dec<'_>) -> Result<Matrix<i16>, WireError> {
    let rows = d.u32()? as usize;
    let cols = d.u32()? as usize;
    let needed = rows.saturating_mul(cols).saturating_mul(2);
    if needed > d.remaining() {
        return Err(WireError::Truncated { needed, have: d.remaining() });
    }
    let data = (0..rows * cols).map(|_| d.i16()).collect::<Result<Vec<_>, _>>()?;
    Matrix::from_vec(rows, cols, data).map_err(bad)
}

fn put_qkv(e: &mut Enc, q: &Qkv) {
    put_matrix_f32(e, &q.q);
    put_matrix_f32(e, &q.k);
    put_matrix_f32(e, &q.v);
}

fn get_qkv(d: &mut Dec<'_>) -> Result<Qkv, WireError> {
    let q = get_matrix_f32(d)?;
    let k = get_matrix_f32(d)?;
    let v = get_matrix_f32(d)?;
    Qkv::new(q, k, v).map_err(bad)
}

fn put_qkvs(e: &mut Enc, qs: &[Qkv]) {
    e.u32(qs.len() as u32);
    for q in qs {
        put_qkv(e, q);
    }
}

fn get_qkvs(d: &mut Dec<'_>) -> Result<Vec<Qkv>, WireError> {
    // Each Qkv is at least 3 empty matrix headers (24 bytes).
    let n = d.count(24)?;
    (0..n).map(|_| get_qkv(d)).collect()
}

fn put_token(e: &mut Enc, t: &TokenQkv) {
    e.f32s(&t.q);
    e.f32s(&t.k);
    e.f32s(&t.v);
}

fn get_token(d: &mut Dec<'_>) -> Result<TokenQkv, WireError> {
    Ok(TokenQkv { q: d.f32s()?, k: d.f32s()?, v: d.f32s()? })
}

fn put_window(e: &mut Enc, w: &Window) {
    e.i64(w.lo());
    e.i64(w.hi());
    e.u64(w.dilation() as u64);
}

fn get_window(d: &mut Dec<'_>) -> Result<Window, WireError> {
    let lo = d.i64()?;
    let hi = d.i64()?;
    let dilation = d.u64()? as usize;
    Window::dilated(lo, hi, dilation).map_err(bad)
}

fn put_term(e: &mut Enc, term: &PatternTerm) {
    match term {
        PatternTerm::Window(w) => {
            e.u8(0);
            put_window(e, w);
        }
        PatternTerm::Global { token } => {
            e.u8(1);
            e.u64(*token as u64);
        }
        PatternTerm::Strided { stride, local } => {
            e.u8(2);
            e.u64(*stride as u64);
            e.u64(*local as u64);
        }
        PatternTerm::BlockSparse { block_rows, layout } => {
            e.u8(3);
            e.u64(*block_rows as u64);
            match layout {
                BlockLayout::Diagonal => e.u8(0),
                BlockLayout::Banded { radius } => {
                    e.u8(1);
                    e.u64(*radius as u64);
                }
                BlockLayout::Explicit(pairs) => {
                    e.u8(2);
                    e.u32(pairs.len() as u32);
                    for &(bi, bj) in pairs {
                        e.u64(bi as u64);
                        e.u64(bj as u64);
                    }
                }
            }
        }
        PatternTerm::RandomBlocks { count, seed } => {
            e.u8(4);
            e.u64(*count as u64);
            e.u64(*seed);
        }
        PatternTerm::Support(runs) => {
            e.u8(5);
            e.u32(runs.n() as u32);
            for i in 0..runs.n() {
                let row = runs.row_runs(i);
                e.u32(row.len() as u32);
                for &(lo, hi) in row {
                    e.u32(lo);
                    e.u32(hi);
                }
            }
        }
    }
}

fn get_term(d: &mut Dec<'_>) -> Result<PatternTerm, WireError> {
    Ok(match d.u8()? {
        0 => PatternTerm::Window(get_window(d)?),
        1 => PatternTerm::Global { token: d.u64()? as usize },
        2 => PatternTerm::Strided { stride: d.u64()? as usize, local: d.u64()? as usize },
        3 => {
            let block_rows = d.u64()? as usize;
            let layout = match d.u8()? {
                0 => BlockLayout::Diagonal,
                1 => BlockLayout::Banded { radius: d.u64()? as usize },
                2 => {
                    let n = d.count(16)?;
                    let pairs = (0..n)
                        .map(|_| Ok((d.u64()? as usize, d.u64()? as usize)))
                        .collect::<Result<Vec<_>, WireError>>()?;
                    BlockLayout::Explicit(pairs)
                }
                other => return Err(WireError::BadValue(format!("block layout {other}"))),
            };
            PatternTerm::BlockSparse { block_rows, layout }
        }
        4 => PatternTerm::RandomBlocks { count: d.u64()? as usize, seed: d.u64()? },
        5 => {
            let n = d.count(4)?;
            let rows = (0..n)
                .map(|_| {
                    let runs = d.count(8)?;
                    (0..runs).map(|_| Ok((d.u32()?, d.u32()?))).collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<Vec<Vec<(u32, u32)>>, WireError>>()?;
            PatternTerm::Support(SupportRuns::from_row_ranges(n, &rows).map_err(bad)?)
        }
        other => return Err(WireError::BadValue(format!("pattern term tag {other}"))),
    })
}

fn put_pattern(e: &mut Enc, p: &HybridPattern) {
    e.u64(p.n() as u64);
    let terms = p.terms();
    e.u32(terms.len() as u32);
    for term in &terms {
        put_term(e, term);
    }
}

fn get_pattern(d: &mut Dec<'_>) -> Result<HybridPattern, WireError> {
    let n = d.u64()? as usize;
    let count = d.count(1)?;
    let terms = (0..count).map(|_| get_term(d)).collect::<Result<Vec<_>, _>>()?;
    // `from_terms` normalization is idempotent on `terms()`, so this
    // reconstruction is exact: same pattern, same fingerprint.
    HybridPattern::from_terms(n, terms).map_err(bad)
}

fn put_shape(e: &mut Enc, s: &AttentionShape) {
    e.u64(s.seq_len as u64);
    e.u64(s.head_dim as u64);
    e.u64(s.num_heads as u64);
}

fn get_shape(d: &mut Dec<'_>) -> Result<AttentionShape, WireError> {
    let n = d.u64()? as usize;
    let dim = d.u64()? as usize;
    let heads = d.u64()? as usize;
    AttentionShape::new(n, dim, heads).map_err(bad)
}

fn put_latency(e: &mut Enc, l: &LatencyStats) {
    e.u64(l.count);
    e.f64(l.mean_s);
    e.f64(l.p50_s);
    e.f64(l.p99_s);
    e.f64(l.max_s);
}

fn get_latency(d: &mut Dec<'_>) -> Result<LatencyStats, WireError> {
    Ok(LatencyStats {
        count: d.u64()?,
        mean_s: d.f64()?,
        p50_s: d.f64()?,
        p99_s: d.f64()?,
        max_s: d.f64()?,
    })
}

fn put_hist(e: &mut Enc, h: &HistogramSnapshot) {
    e.u64(h.count);
    e.u64(h.sum);
    e.u64(h.min);
    e.u64(h.max);
    let nonzero: Vec<(usize, u64)> =
        h.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c)).collect();
    e.u32(nonzero.len() as u32);
    for (i, c) in nonzero {
        e.u32(i as u32);
        e.u64(c);
    }
}

fn get_hist(d: &mut Dec<'_>) -> Result<HistogramSnapshot, WireError> {
    let mut h = HistogramSnapshot {
        count: d.u64()?,
        sum: d.u64()?,
        min: d.u64()?,
        max: d.u64()?,
        ..Default::default()
    };
    let n = d.count(12)?;
    for _ in 0..n {
        let idx = d.u32()? as usize;
        let cnt = d.u64()?;
        if idx >= NUM_BUCKETS {
            return Err(WireError::BadValue(format!("histogram bucket {idx}")));
        }
        h.buckets[idx] = cnt;
    }
    Ok(h)
}

fn put_u64s(e: &mut Enc, v: &[u64]) {
    e.u32(v.len() as u32);
    for &x in v {
        e.u64(x);
    }
}

fn get_u64s(d: &mut Dec<'_>) -> Result<Vec<u64>, WireError> {
    let n = d.count(8)?;
    (0..n).map(|_| d.u64()).collect()
}

/// Encodes a full [`ServeReport`] — public so the bench can frame shard
/// reports without a gateway in the loop.
fn put_report(e: &mut Enc, r: &ServeReport) {
    e.u64(r.requests);
    e.u64(r.errors);
    e.f64(r.wall_s);
    e.f64(r.throughput_rps);
    put_latency(e, &r.latency);
    put_hist(e, &r.latency_hist);
    e.u64(r.cache.hits);
    e.u64(r.cache.misses);
    e.u64(r.cache.evictions);
    e.u64(r.cache.entries as u64);
    e.u64(r.batches);
    e.f64(r.mean_batch_size);
    e.u64(r.max_queue_depth as u64);
    e.u64(r.sim_cycles);
    e.f64(r.sim_energy_j);
    put_u64s(e, &r.per_worker_requests);
    e.u64(r.decode_sessions);
    e.u64(r.decode_session_errors);
    e.u64(r.decode_steps);
    e.u64(r.decode_step_errors);
    put_latency(e, &r.decode_step_latency);
    put_hist(e, &r.decode_step_latency_hist);
    e.u64(r.decode_resident_kv_byte_steps);
    e.u64(r.decode_peak_resident_pages);
    e.u64(r.decode_peak_pool_pages);
    e.u64(r.decode_page_reclaims);
    e.u64(r.decode_pool_exhausted);
    e.u32(r.tenants.len() as u32);
    for (&tenant, t) in &r.tenants {
        e.u64(tenant);
        e.u64(t.requests);
        e.u64(t.rejections);
        e.u64(t.decode_steps);
    }
}

fn get_report(d: &mut Dec<'_>) -> Result<ServeReport, WireError> {
    let requests = d.u64()?;
    let errors = d.u64()?;
    let wall_s = d.f64()?;
    let throughput_rps = d.f64()?;
    let latency = get_latency(d)?;
    let latency_hist = get_hist(d)?;
    let cache = CacheStats {
        hits: d.u64()?,
        misses: d.u64()?,
        evictions: d.u64()?,
        entries: d.u64()? as usize,
    };
    let batches = d.u64()?;
    let mean_batch_size = d.f64()?;
    let max_queue_depth = d.u64()? as usize;
    let sim_cycles = d.u64()?;
    let sim_energy_j = d.f64()?;
    let per_worker_requests = get_u64s(d)?;
    let decode_sessions = d.u64()?;
    let decode_session_errors = d.u64()?;
    let decode_steps = d.u64()?;
    let decode_step_errors = d.u64()?;
    let decode_step_latency = get_latency(d)?;
    let decode_step_latency_hist = get_hist(d)?;
    let decode_resident_kv_byte_steps = d.u64()?;
    let decode_peak_resident_pages = d.u64()?;
    let decode_peak_pool_pages = d.u64()?;
    let decode_page_reclaims = d.u64()?;
    let decode_pool_exhausted = d.u64()?;
    let n_tenants = d.count(32)?;
    let mut tenants = BTreeMap::new();
    for _ in 0..n_tenants {
        let tenant = d.u64()?;
        let t = TenantCounters { requests: d.u64()?, rejections: d.u64()?, decode_steps: d.u64()? };
        tenants.insert(tenant, t);
    }
    Ok(ServeReport {
        requests,
        errors,
        wall_s,
        throughput_rps,
        latency,
        latency_hist,
        cache,
        batches,
        mean_batch_size,
        max_queue_depth,
        sim_cycles,
        sim_energy_j,
        per_worker_requests,
        decode_sessions,
        decode_session_errors,
        decode_steps,
        decode_step_errors,
        decode_step_latency,
        decode_step_latency_hist,
        decode_resident_kv_byte_steps,
        decode_peak_resident_pages,
        decode_peak_pool_pages,
        decode_page_reclaims,
        decode_pool_exhausted,
        tenants,
    })
}

// ---------------------------------------------------------------------
// message framing
// ---------------------------------------------------------------------

const OP_PREFILL: u8 = 0x01;
const OP_OPEN: u8 = 0x02;
const OP_STEP: u8 = 0x03;
const OP_CLOSE: u8 = 0x04;
const OP_STATS: u8 = 0x05;
const OP_SHUTDOWN: u8 = 0x06;
const OP_PREFILL_DONE: u8 = 0x81;
const OP_OPENED: u8 = 0x82;
const OP_STEPPED: u8 = 0x83;
const OP_CLOSED: u8 = 0x84;
const OP_STATS_REPLY: u8 = 0x85;
const OP_REPORT: u8 = 0x86;
const OP_ERROR: u8 = 0xC0;

/// Encodes a request into a complete frame (length prefix included).
#[must_use]
pub fn encode_request(header: Header, req: &Request) -> Vec<u8> {
    let op = match req {
        Request::Prefill { .. } => OP_PREFILL,
        Request::Open { .. } => OP_OPEN,
        Request::Step { .. } => OP_STEP,
        Request::Close { .. } => OP_CLOSE,
        Request::Stats => OP_STATS,
        Request::Shutdown => OP_SHUTDOWN,
    };
    let mut e = Enc::new(op, header);
    match req {
        Request::Prefill { pattern, shape, heads } => {
            put_pattern(&mut e, pattern);
            put_shape(&mut e, shape);
            put_qkvs(&mut e, heads);
        }
        Request::Open { pattern, head_dim, num_heads, prompt } => {
            put_pattern(&mut e, pattern);
            e.u64(*head_dim as u64);
            e.u64(*num_heads as u64);
            put_qkvs(&mut e, prompt);
        }
        Request::Step { session, token } => {
            e.u64(*session);
            e.u32(token.len() as u32);
            for t in token {
                put_token(&mut e, t);
            }
        }
        Request::Close { session } => e.u64(*session),
        Request::Stats | Request::Shutdown => {}
    }
    e.finish()
}

/// Encodes a response into a complete frame (length prefix included).
#[must_use]
pub fn encode_response(header: Header, resp: &Response) -> Vec<u8> {
    let op = match resp {
        Response::PrefillDone { .. } => OP_PREFILL_DONE,
        Response::Opened { .. } => OP_OPENED,
        Response::Stepped { .. } => OP_STEPPED,
        Response::Closed { .. } => OP_CLOSED,
        Response::Stats { .. } => OP_STATS_REPLY,
        Response::Report { .. } => OP_REPORT,
        Response::Error(_) => OP_ERROR,
    };
    let mut e = Enc::new(op, header);
    match resp {
        Response::PrefillDone { heads, sim_time_s, sim_energy_j } => {
            e.u32(heads.len() as u32);
            for h in heads {
                put_matrix_f32(&mut e, &h.output);
                put_matrix_i16(&mut e, &h.raw);
                e.u32(h.weights_q16.len() as u32);
                for &w in &h.weights_q16 {
                    e.i64(w);
                }
            }
            e.f64(*sim_time_s);
            e.f64(*sim_energy_j);
        }
        Response::Opened { session, min_step, position, capacity } => {
            e.u64(*session);
            e.u64(*min_step);
            e.u64(*position);
            e.u64(*capacity);
        }
        Response::Stepped { session, position, heads } => {
            e.u64(*session);
            e.u64(*position);
            e.u32(heads.len() as u32);
            for h in heads {
                e.f32s(&h.output);
                match &h.raw {
                    None => e.u8(0),
                    Some(raw) => {
                        e.u8(1);
                        e.u32(raw.len() as u32);
                        for &x in raw {
                            e.i16(x);
                        }
                    }
                }
                match h.weight_q16 {
                    None => e.u8(0),
                    Some(w) => {
                        e.u8(1);
                        e.i64(w);
                    }
                }
                e.u64(h.saturation_events);
            }
        }
        Response::Closed { session, position } => {
            e.u64(*session);
            match position {
                None => e.u8(0),
                Some(p) => {
                    e.u8(1);
                    e.u64(*p);
                }
            }
        }
        Response::Stats { json } => e.str(json),
        Response::Report { report } => put_report(&mut e, report),
        Response::Error(err) => {
            e.u8(err.code.to_u8());
            e.str(&err.message);
            match err.retry_after_ms {
                None => e.u8(0),
                Some(ms) => {
                    e.u8(1);
                    e.u64(ms);
                }
            }
        }
    }
    e.finish()
}

fn decode_header(d: &mut Dec<'_>) -> Result<(u8, Header), WireError> {
    let version = d.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let op = d.u8()?;
    let tenant = d.u64()?;
    let request_id = d.u64()?;
    Ok((op, Header { tenant, request_id }))
}

/// Decodes a request payload (the frame minus its length prefix).
///
/// # Errors
///
/// Any [`WireError`]: truncation, trailing bytes, unknown opcode, bad
/// version, or domain-invalid fields. Never panics on arbitrary input.
pub fn decode_request(payload: &[u8]) -> Result<(Header, Request), WireError> {
    let mut d = Dec::new(payload);
    let (op, header) = decode_header(&mut d)?;
    let req = match op {
        OP_PREFILL => {
            let pattern = get_pattern(&mut d)?;
            let shape = get_shape(&mut d)?;
            let heads = get_qkvs(&mut d)?;
            Request::Prefill { pattern, shape, heads }
        }
        OP_OPEN => {
            let pattern = get_pattern(&mut d)?;
            let head_dim = d.u64()? as usize;
            let num_heads = d.u64()? as usize;
            let prompt = get_qkvs(&mut d)?;
            Request::Open { pattern, head_dim, num_heads, prompt }
        }
        OP_STEP => {
            let session = d.u64()?;
            let n = d.count(12)?;
            let token = (0..n).map(|_| get_token(&mut d)).collect::<Result<Vec<_>, _>>()?;
            Request::Step { session, token }
        }
        OP_CLOSE => Request::Close { session: d.u64()? },
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        other => return Err(WireError::UnknownOpcode(other)),
    };
    d.finish()?;
    Ok((header, req))
}

/// Decodes a response payload (the frame minus its length prefix).
///
/// # Errors
///
/// As [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<(Header, Response), WireError> {
    let mut d = Dec::new(payload);
    let (op, header) = decode_header(&mut d)?;
    let resp = match op {
        OP_PREFILL_DONE => {
            // Each head is at least two matrix headers + a weight count.
            let n = d.count(20)?;
            let heads = (0..n)
                .map(|_| {
                    let output = get_matrix_f32(&mut d)?;
                    let raw = get_matrix_i16(&mut d)?;
                    let wn = d.count(8)?;
                    let weights_q16 = (0..wn).map(|_| d.i64()).collect::<Result<Vec<_>, _>>()?;
                    Ok(PrefillHead { output, raw, weights_q16 })
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            let sim_time_s = d.f64()?;
            let sim_energy_j = d.f64()?;
            Response::PrefillDone { heads, sim_time_s, sim_energy_j }
        }
        OP_OPENED => Response::Opened {
            session: d.u64()?,
            min_step: d.u64()?,
            position: d.u64()?,
            capacity: d.u64()?,
        },
        OP_STEPPED => {
            let session = d.u64()?;
            let position = d.u64()?;
            let n = d.count(10)?;
            let heads = (0..n)
                .map(|_| {
                    let output = d.f32s()?;
                    let raw = match d.u8()? {
                        0 => None,
                        _ => {
                            let rn = d.count(2)?;
                            Some((0..rn).map(|_| d.i16()).collect::<Result<Vec<_>, _>>()?)
                        }
                    };
                    let weight_q16 = match d.u8()? {
                        0 => None,
                        _ => Some(d.i64()?),
                    };
                    let saturation_events = d.u64()?;
                    Ok(WireHeadStep { output, raw, weight_q16, saturation_events })
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            Response::Stepped { session, position, heads }
        }
        OP_CLOSED => {
            let session = d.u64()?;
            let position = match d.u8()? {
                0 => None,
                _ => Some(d.u64()?),
            };
            Response::Closed { session, position }
        }
        OP_STATS_REPLY => Response::Stats { json: d.str()? },
        OP_REPORT => Response::Report { report: Box::new(get_report(&mut d)?) },
        OP_ERROR => {
            let code = ErrorCode::from_u8(d.u8()?)?;
            let message = d.str()?;
            let retry_after_ms = match d.u8()? {
                0 => None,
                _ => Some(d.u64()?),
            };
            Response::Error(ErrorFrame { code, message, retry_after_ms })
        }
        other => return Err(WireError::UnknownOpcode(other)),
    };
    d.finish()?;
    Ok((header, resp))
}

/// Reads one frame from `r`, returning the payload (length prefix
/// stripped). The length is validated against [`MAX_FRAME_LEN`] before
/// any allocation.
///
/// # Errors
///
/// [`WireError::Io`] on stream failure (EOF surfaces as
/// `UnexpectedEof`, a read deadline as `WouldBlock`/`TimedOut`),
/// [`WireError::OversizedFrame`] past the bound, or
/// [`WireError::Truncated`] when the payload cannot even hold a header.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::OversizedFrame { len, max: MAX_FRAME_LEN });
    }
    if len < HEADER_LEN {
        return Err(WireError::Truncated { needed: HEADER_LEN, have: len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes a complete pre-encoded frame to `w` and flushes it.
///
/// # Errors
///
/// [`WireError::Io`] on stream failure or a write deadline.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> Result<(), WireError> {
    w.write_all(frame)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let header = Header { tenant: 7, request_id: 42 };
        let frame = encode_request(header, &req);
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4, "length prefix covers the payload");
        let (h, decoded) = decode_request(&frame[4..]).expect("decodes");
        assert_eq!(h, header);
        assert_eq!(decoded, req);
    }

    #[test]
    fn simple_requests_roundtrip() {
        roundtrip_request(Request::Close { session: 9 });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Step {
            session: 3,
            token: vec![TokenQkv {
                q: vec![1.0, -2.5],
                k: vec![0.0, f32::MIN_POSITIVE],
                v: vec![3.25, 4.0],
            }],
        });
    }

    #[test]
    fn prefill_roundtrips_with_pattern_fingerprint_intact() {
        let pattern = salo_patterns::longformer(64, 8, 2).unwrap();
        let shape = AttentionShape::new(64, 8, 1).unwrap();
        let heads = vec![Qkv::random(64, 8, 1)];
        let req = Request::Prefill { pattern: pattern.clone(), shape, heads };
        let frame = encode_request(Header::default(), &req);
        let (_, decoded) = decode_request(&frame[4..]).unwrap();
        let Request::Prefill { pattern: p2, .. } = &decoded else { panic!("wrong variant") };
        assert_eq!(p2.fingerprint(), pattern.fingerprint());
        assert_eq!(decoded, req);
    }

    #[test]
    fn responses_roundtrip() {
        let header = Header { tenant: 1, request_id: 2 };
        for resp in [
            Response::Opened { session: 1, min_step: 4, position: 4, capacity: 96 },
            Response::Closed { session: 1, position: Some(96) },
            Response::Closed { session: 2, position: None },
            Response::Stats { json: "{\"counters\":{}}".into() },
            Response::Error(ErrorFrame {
                code: ErrorCode::Overloaded,
                message: "tenant queue full".into(),
                retry_after_ms: Some(12),
            }),
            Response::Stepped {
                session: 5,
                position: 17,
                heads: vec![WireHeadStep {
                    output: vec![0.5, -0.5],
                    raw: Some(vec![128, -7]),
                    weight_q16: Some(1 << 16),
                    saturation_events: 3,
                }],
            },
        ] {
            let frame = encode_response(header, &resp);
            let (h, decoded) = decode_response(&frame[4..]).expect("decodes");
            assert_eq!(h, header);
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn report_roundtrips_with_histograms() {
        let mut hist = HistogramSnapshot::default();
        for v in [100u64, 1000, 1_000_000, 12] {
            hist.record(v);
        }
        let report = ServeReport {
            requests: 10,
            errors: 1,
            wall_s: 1.5,
            throughput_rps: 6.6667,
            latency: LatencyStats { count: 10, mean_s: 0.1, p50_s: 0.09, p99_s: 0.2, max_s: 0.3 },
            latency_hist: hist.clone(),
            cache: CacheStats { hits: 3, misses: 2, evictions: 1, entries: 2 },
            batches: 4,
            mean_batch_size: 2.5,
            max_queue_depth: 7,
            sim_cycles: 1234,
            sim_energy_j: 5.5e-6,
            per_worker_requests: vec![6, 4],
            decode_steps: 20,
            decode_step_latency_hist: hist,
            tenants: BTreeMap::from([
                (0, TenantCounters { requests: 4, rejections: 0, decode_steps: 20 }),
                (3, TenantCounters { requests: 6, rejections: 2, decode_steps: 0 }),
            ]),
            ..Default::default()
        };
        let frame = encode_response(
            Header::default(),
            &Response::Report { report: Box::new(report.clone()) },
        );
        let (_, decoded) = decode_response(&frame[4..]).unwrap();
        let Response::Report { report: r2 } = decoded else { panic!("wrong variant") };
        let r2 = *r2;
        assert_eq!(r2, report);
        // The decoded report still merges bucket-exactly.
        let merged = r2.merged_with(&report);
        assert_eq!(merged.latency_hist.count, 8);
    }

    #[test]
    fn oversized_and_undersized_frames_are_typed_errors() {
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let err = read_frame(&mut oversized.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::OversizedFrame { .. }), "{err:?}");

        let mut undersized = Vec::new();
        undersized.extend_from_slice(&3u32.to_le_bytes());
        undersized.extend_from_slice(&[0, 0, 0]);
        let err = read_frame(&mut undersized.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn hostile_length_cannot_force_allocation() {
        // A step frame claiming 4 billion tokens in a 30-byte payload
        // must fail on the count check, not attempt the allocation.
        let mut e = Enc::new(OP_STEP, Header::default());
        e.u64(1);
        e.u32(u32::MAX);
        let frame = e.finish();
        let err = decode_request(&frame[4..]).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }), "{err:?}");
    }
}
