//! The gateway runtime: acceptor, per-connection readers, and a
//! deficit-round-robin dispatcher in front of a [`SaloServer`].
//!
//! Threading model (std-only, no async runtime):
//!
//! * one **acceptor** polls a non-blocking `TcpListener` and spawns a
//!   reader per connection;
//! * each **reader** owns its socket's read half: it frames, decodes,
//!   and *admits* requests — the only unbounded thing a client controls
//!   is how fast it sends, and admission turns that into typed
//!   `Overloaded` rejections the moment its tenant queue (or the global
//!   backlog) is full. Replies are written by whoever produced them,
//!   under the connection's write-half mutex;
//! * one **dispatcher** drains the admitted queues in deficit round
//!   robin across tenants and executes against the server. It is the
//!   server's sole layer-submission client, so `submit` → `recv` pairs
//!   without response routing; decode sessions use their own per-session
//!   event channels.
//!
//! Fairness lives entirely in the admission + dispatch pair: a tenant
//! flooding 10× faster than its quota drains gains nothing — its excess
//! is rejected at admission, and what *is* admitted is interleaved with
//! other tenants' work a quantum at a time.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use salo_serve::{
    DecodeSessionHandle, SaloServer, ServeError, ServeOptions, ServeReport, ServeRequest,
    SessionEvent, SessionRequest,
};
use salo_sim::AcceleratorConfig;

use crate::wire::{
    self, encode_response, ErrorCode, ErrorFrame, Header, PrefillHead, Request, Response,
    WireError, WireHeadStep,
};

/// Gateway configuration: the wrapped server's options plus the knobs of
/// the network front door.
#[derive(Debug, Clone)]
pub struct GatewayOptions {
    /// Options for the [`SaloServer`] the gateway runs in front of.
    pub serve: ServeOptions,
    /// Per-tenant admission bound: a tenant with this many requests
    /// already queued sees `Overloaded` instead of deeper queues.
    pub tenant_quota: usize,
    /// Global admission bound across all tenants.
    pub global_queue: usize,
    /// Deficit-round-robin quantum: requests a tenant may run per
    /// dispatch visit before the dispatcher moves to the next tenant.
    pub tenant_quantum: usize,
    /// Per-connection socket read deadline. A connection idle past it is
    /// told so (typed `TimedOut` frame) and closed.
    pub read_timeout: Duration,
    /// Per-connection socket write deadline.
    pub write_timeout: Duration,
    /// Per-request service deadline: time from admission to completion
    /// (queue wait included) before the request fails with a typed
    /// `TimedOut` frame instead of hanging its connection.
    pub service_timeout: Duration,
    /// How long [`Gateway::shutdown`] waits for admitted work to finish
    /// before failing the remainder with `Draining` frames.
    pub drain_deadline: Duration,
}

impl Default for GatewayOptions {
    fn default() -> Self {
        GatewayOptions {
            serve: ServeOptions::default(),
            tenant_quota: 64,
            global_queue: 1024,
            tenant_quantum: 4,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            service_timeout: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// Final accounting from [`Gateway::shutdown`]: the drained server's
/// [`ServeReport`] plus the front door's own counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GatewayReport {
    /// The wrapped server's report (tenant counters included).
    pub serve: ServeReport,
    /// Connections accepted over the gateway's lifetime.
    pub connections: u64,
    /// Frames successfully read and framed.
    pub frames_read: u64,
    /// Frames successfully written.
    pub frames_written: u64,
    /// Requests that passed admission.
    pub admitted: u64,
    /// Requests refused with `Overloaded`.
    pub rejected_overloaded: u64,
    /// Requests refused (or abandoned at the deadline) with `Draining`.
    pub rejected_draining: u64,
    /// Requests failed with `TimedOut` (queue wait or session wait past
    /// the service deadline).
    pub timed_out: u64,
    /// Whether the drain completed inside
    /// [`GatewayOptions::drain_deadline`].
    pub drained_in_deadline: bool,
}

/// One admitted, not-yet-dispatched request.
struct Pending {
    header: Header,
    request: Request,
    conn: Arc<ConnShared>,
    enqueued: Instant,
}

/// Out-of-band notices readers push to the dispatcher.
enum Control {
    /// The connection's reader exited; its decode sessions are orphans.
    ConnClosed { conn_id: u64 },
}

/// Admission queues plus the dispatcher's round state, under one lock.
/// Readers only touch it to admit (bounded work); the dispatcher holds
/// it only to pop a quantum — execution happens outside.
#[derive(Default)]
struct QueueState {
    /// Per-tenant FIFO of admitted requests.
    queues: BTreeMap<u64, VecDeque<Pending>>,
    /// Total admitted across all tenants (the global bound's counter).
    queued_total: usize,
    /// Tenants with queued work, in round-robin visit order.
    round: VecDeque<u64>,
    /// Unspent deficit per tenant in `round`.
    deficits: HashMap<u64, usize>,
    /// Reader → dispatcher notices.
    controls: Vec<Control>,
    /// Tells the dispatcher to wind down once the queues are empty.
    stop: bool,
}

/// The per-connection state shared between its reader (framing, inline
/// replies) and the dispatcher (request replies, terminal closes). The
/// stream mutex serializes writers; the read half is the reader's own
/// clone and is never locked.
struct ConnShared {
    id: u64,
    stream: Mutex<TcpStream>,
    alive: AtomicBool,
}

struct Inner {
    options: GatewayOptions,
    server: Arc<SaloServer>,
    state: Mutex<QueueState>,
    work_ready: Condvar,
    /// Set by shutdown: readers reject new work as `Draining`, the
    /// acceptor stops accepting.
    draining: AtomicBool,
    next_conn_id: AtomicU64,
    connections: Mutex<HashMap<u64, Arc<ConnShared>>>,
    reader_threads: Mutex<Vec<JoinHandle<()>>>,
    connections_total: AtomicU64,
    frames_read: AtomicU64,
    frames_written: AtomicU64,
    admitted: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_draining: AtomicU64,
    timed_out: AtomicU64,
    /// A wire `Shutdown` request parks here for
    /// [`Gateway::run_until_shutdown`].
    shutdown_request: Mutex<Option<(Arc<ConnShared>, Header)>>,
    shutdown_signal: Condvar,
}

/// The network front door: a TCP listener mapping wire frames onto a
/// [`SaloServer`] it owns. See the [crate docs](crate) for the protocol
/// and fairness model.
pub struct Gateway {
    inner: Arc<Inner>,
    server: Arc<SaloServer>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Starts a server with `options.serve` and binds the gateway to
    /// `addr` (use port 0 for an ephemeral port, then [`local_addr`](Self::local_addr)
    /// (Self::local_addr)).
    ///
    /// # Errors
    ///
    /// Returns the bind error, if any.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: AcceleratorConfig,
        options: GatewayOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let server = Arc::new(SaloServer::start(config, options.serve));
        let inner = Arc::new(Inner {
            options,
            server: Arc::clone(&server),
            state: Mutex::new(QueueState::default()),
            work_ready: Condvar::new(),
            draining: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(1),
            connections: Mutex::new(HashMap::new()),
            reader_threads: Mutex::new(Vec::new()),
            connections_total: AtomicU64::new(0),
            frames_read: AtomicU64::new(0),
            frames_written: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            shutdown_request: Mutex::new(None),
            shutdown_signal: Condvar::new(),
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("gateway-accept".into())
                .spawn(move || accept_loop(&inner, listener))
                .expect("spawn acceptor")
        };
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("gateway-dispatch".into())
                .spawn(move || dispatch_loop(&inner))
                .expect("spawn dispatcher")
        };
        Ok(Gateway {
            inner,
            server,
            addr: local,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
        })
    }

    /// The bound listen address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The wrapped server's metrics registry (serve counters, per-tenant
    /// counters, and the gateway's `gateway.*` family).
    #[must_use]
    pub fn metrics(&self) -> &salo_serve::MetricsRegistry {
        self.server.metrics()
    }

    /// Gracefully drains and shuts the gateway down:
    ///
    /// 1. stop accepting connections; readers reject new work with
    ///    typed `Draining` frames;
    /// 2. wait — up to [`GatewayOptions::drain_deadline`] — for admitted
    ///    work to finish; whatever is still queued past the deadline is
    ///    failed with `Draining` frames instead of executed;
    /// 3. the dispatcher closes every live wire session, sending each
    ///    connection a terminal `Closed` frame;
    /// 4. reader sockets are read-shutdown (write halves stay open for
    ///    any final frame), all threads joined, and the server drained
    ///    and shut down.
    pub fn shutdown(mut self) -> GatewayReport {
        let report = shutdown_impl(&self.inner, self.acceptor.take(), self.dispatcher.take());
        drop(self.inner);
        let server = Arc::into_inner(self.server).expect("gateway threads joined");
        GatewayReport { serve: server.shutdown(), ..report }
    }

    /// Serves until a client sends the wire `Shutdown` opcode, then
    /// drains (exactly as [`shutdown`](Self::shutdown)), replies to the
    /// requester with the final wire-encoded report, and returns it.
    /// This is how a `gateway_bench` parent collects a child shard's
    /// report over the socket.
    pub fn run_until_shutdown(self) -> GatewayReport {
        let (conn, header) = {
            let mut slot = self.inner.shutdown_request.lock().expect("shutdown slot poisoned");
            while slot.is_none() {
                slot = self.inner.shutdown_signal.wait(slot).expect("shutdown slot poisoned");
            }
            slot.take().expect("checked above")
        };
        let report = self.shutdown();
        let frame =
            encode_response(header, &Response::Report { report: Box::new(report.serve.clone()) });
        if let Ok(mut stream) = conn.stream.lock() {
            let _ = stream.write_all(&frame);
            let _ = stream.flush();
        }
        report
    }
}

fn shutdown_impl(
    inner: &Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
) -> GatewayReport {
    let options = inner.options.clone();
    let start = Instant::now();
    inner.draining.store(true, Ordering::Release);

    // Let admitted work finish under the deadline.
    let drained_in_deadline = loop {
        let queued = inner.state.lock().expect("gateway state poisoned").queued_total;
        if queued == 0 {
            break true;
        }
        if start.elapsed() >= options.drain_deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(2));
    };

    // Fail whatever outlived the deadline, then stop the dispatcher.
    let leftovers = {
        let mut state = inner.state.lock().expect("gateway state poisoned");
        let mut leftovers = Vec::new();
        for (_, queue) in std::mem::take(&mut state.queues) {
            leftovers.extend(queue);
        }
        state.queued_total = 0;
        state.round.clear();
        state.deficits.clear();
        state.stop = true;
        inner.work_ready.notify_all();
        leftovers
    };
    for pending in leftovers {
        inner.rejected_draining.fetch_add(1, Ordering::Relaxed);
        send_error(
            inner,
            &pending.conn,
            pending.header,
            ErrorCode::Draining,
            "gateway drain deadline expired before this request ran",
            None,
        );
    }

    if let Some(handle) = acceptor {
        handle.join().expect("acceptor panicked");
    }
    if let Some(handle) = dispatcher {
        handle.join().expect("dispatcher panicked");
    }

    // Unblock the readers: read halves close, write halves stay usable
    // for the shutdown requester's final Report frame.
    {
        let connections = inner.connections.lock().expect("connections poisoned");
        for conn in connections.values() {
            if let Ok(stream) = conn.stream.lock() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
    }
    let readers = std::mem::take(&mut *inner.reader_threads.lock().expect("readers poisoned"));
    for handle in readers {
        handle.join().expect("reader panicked");
    }

    let remaining = options.drain_deadline.saturating_sub(start.elapsed());
    inner.server.drain(remaining.max(Duration::from_millis(100)));

    GatewayReport {
        serve: ServeReport::default(),
        connections: inner.connections_total.load(Ordering::Relaxed),
        frames_read: inner.frames_read.load(Ordering::Relaxed),
        frames_written: inner.frames_written.load(Ordering::Relaxed),
        admitted: inner.admitted.load(Ordering::Relaxed),
        rejected_overloaded: inner.rejected_overloaded.load(Ordering::Relaxed),
        rejected_draining: inner.rejected_draining.load(Ordering::Relaxed),
        timed_out: inner.timed_out.load(Ordering::Relaxed),
        drained_in_deadline,
    }
}

// ---------------------------------------------------------------------
// acceptor
// ---------------------------------------------------------------------

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    while !inner.draining.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
                let _span = salo_trace::span_with("gateway.accept", "gateway", conn_id);
                inner.connections_total.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(inner.options.read_timeout));
                let _ = stream.set_write_timeout(Some(inner.options.write_timeout));
                let Ok(write_half) = stream.try_clone() else { continue };
                let conn = Arc::new(ConnShared {
                    id: conn_id,
                    stream: Mutex::new(write_half),
                    alive: AtomicBool::new(true),
                });
                inner
                    .connections
                    .lock()
                    .expect("connections poisoned")
                    .insert(conn_id, Arc::clone(&conn));
                let reader_inner = Arc::clone(inner);
                let handle = std::thread::Builder::new()
                    .name(format!("gateway-conn-{conn_id}"))
                    .spawn(move || reader_loop(&reader_inner, stream, conn))
                    .expect("spawn reader");
                inner.reader_threads.lock().expect("readers poisoned").push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

// ---------------------------------------------------------------------
// reader: frame → decode → admit
// ---------------------------------------------------------------------

fn reader_loop(inner: &Arc<Inner>, mut stream: TcpStream, conn: Arc<ConnShared>) {
    loop {
        let started = Instant::now();
        let payload = match wire::read_frame(&mut stream) {
            Ok(p) => p,
            Err(WireError::Io(kind)) => {
                use std::io::ErrorKind;
                if matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                    // Read deadline: tell the client why before closing.
                    send_error(
                        inner,
                        &conn,
                        Header::default(),
                        ErrorCode::TimedOut,
                        "connection idle past the read deadline",
                        None,
                    );
                }
                break; // EOF, reset, or deadline — connection is done
            }
            Err(err) => {
                // Framing violation (oversized / short frame): typed
                // reply, then close — the stream offset is unreliable.
                send_error(
                    inner,
                    &conn,
                    Header::default(),
                    ErrorCode::BadFrame,
                    &err.to_string(),
                    None,
                );
                break;
            }
        };
        inner.frames_read.fetch_add(1, Ordering::Relaxed);
        salo_trace::record_since("gateway.read_frame", "gateway", started, conn.id);

        let (header, request) = match wire::decode_request(&payload) {
            Ok(decoded) => decoded,
            Err(err) => {
                // The frame boundary was sound, so the stream stays in
                // sync: reply typed and keep the connection.
                send_error(
                    inner,
                    &conn,
                    Header::default(),
                    ErrorCode::BadFrame,
                    &err.to_string(),
                    None,
                );
                continue;
            }
        };

        match request {
            Request::Stats => {
                // Served inline off the live registry — stats must work
                // even when the dispatch queue is saturated.
                let json = inner.server.metrics().export_json();
                send_response(inner, &conn, header, &Response::Stats { json });
            }
            Request::Shutdown => {
                let mut slot = inner.shutdown_request.lock().expect("shutdown slot poisoned");
                if slot.is_none() {
                    *slot = Some((Arc::clone(&conn), header));
                }
                inner.shutdown_signal.notify_all();
            }
            request => admit(inner, header, request, &conn),
        }

        if !conn.alive.load(Ordering::Acquire) {
            break; // the write half failed; reading further is pointless
        }
    }

    conn.alive.store(false, Ordering::Release);
    inner.connections.lock().expect("connections poisoned").remove(&conn.id);
    let mut state = inner.state.lock().expect("gateway state poisoned");
    state.controls.push(Control::ConnClosed { conn_id: conn.id });
    inner.work_ready.notify_all();
}

fn admit(inner: &Arc<Inner>, header: Header, request: Request, conn: &Arc<ConnShared>) {
    let _span = salo_trace::span_with("gateway.admission", "gateway", header.tenant);
    if inner.draining.load(Ordering::Acquire) {
        inner.rejected_draining.fetch_add(1, Ordering::Relaxed);
        send_error(inner, conn, header, ErrorCode::Draining, "gateway is draining", None);
        return;
    }
    let tenant = header.tenant;
    let overloaded_depth = {
        let mut guard = inner.state.lock().expect("gateway state poisoned");
        let state = &mut *guard;
        let depth = state.queues.get(&tenant).map_or(0, VecDeque::len);
        if depth >= inner.options.tenant_quota || state.queued_total >= inner.options.global_queue {
            Some(state.queued_total.max(depth))
        } else {
            if depth == 0 && !state.round.contains(&tenant) {
                state.round.push_back(tenant);
            }
            state.queues.entry(tenant).or_default().push_back(Pending {
                header,
                request,
                conn: Arc::clone(conn),
                enqueued: Instant::now(),
            });
            state.queued_total += 1;
            inner.work_ready.notify_all();
            None
        }
    };
    match overloaded_depth {
        None => {
            inner.admitted.fetch_add(1, Ordering::Relaxed);
        }
        Some(depth) => {
            inner.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
            inner.server.record_tenant_rejection(tenant);
            inner.server.metrics().counter("gateway.rejected.overloaded").inc();
            // Rough service-rate hint: two milliseconds per queued
            // request ahead of a retry.
            let hint = 2 * (depth as u64 + 1);
            send_error(
                inner,
                conn,
                header,
                ErrorCode::Overloaded,
                "tenant or global admission queue is full",
                Some(hint),
            );
        }
    }
}

// ---------------------------------------------------------------------
// dispatcher: deficit round robin → execute → reply
// ---------------------------------------------------------------------

/// A live wire session: the serve-side handle plus the connection (and
/// open header) its frames belong to.
struct SessionEntry {
    handle: DecodeSessionHandle,
    conn: Arc<ConnShared>,
    opened_by: Header,
}

fn dispatch_loop(inner: &Arc<Inner>) {
    let mut sessions: HashMap<u64, SessionEntry> = HashMap::new();
    let mut next_wire_session: u64 = 1;

    loop {
        let (batch, controls, stopped) = {
            let mut state = inner.state.lock().expect("gateway state poisoned");
            loop {
                if !state.controls.is_empty() || state.queued_total > 0 || state.stop {
                    break;
                }
                let (next, _) = inner
                    .work_ready
                    .wait_timeout(state, Duration::from_millis(100))
                    .expect("gateway state poisoned");
                state = next;
            }
            let controls = std::mem::take(&mut state.controls);
            let batch = pop_quantum(&mut state, inner.options.tenant_quantum);
            (batch, controls, state.stop && state.queued_total == 0)
        };

        for control in controls {
            let Control::ConnClosed { conn_id } = control;
            // The client is gone: close its sessions server-side. No
            // frames — there is nobody to write to.
            let orphaned: Vec<u64> = sessions
                .iter()
                .filter(|(_, entry)| entry.conn.id == conn_id)
                .map(|(&wire_id, _)| wire_id)
                .collect();
            for wire_id in orphaned {
                let entry = sessions.remove(&wire_id).expect("just listed");
                let _ = inner.server.close_session(entry.handle.id());
                wait_closed(&entry.handle, Duration::from_secs(1));
            }
        }

        let stopping = batch.is_empty() && stopped;
        for pending in batch {
            execute(inner, pending, &mut sessions, &mut next_wire_session);
        }
        if stopping {
            break;
        }
    }

    // Drain: every live wire session gets a terminal Closed frame on its
    // connection, correlated to the open request.
    for (wire_id, entry) in sessions.drain() {
        let _ = inner.server.close_session(entry.handle.id());
        let position = wait_closed(&entry.handle, inner.options.drain_deadline);
        send_response(
            inner,
            &entry.conn,
            entry.opened_by,
            &Response::Closed { session: wire_id, position: position.map(|p| p as u64) },
        );
    }
}

/// Pops up to `quantum` requests from the tenant at the head of the
/// round, replenishing its deficit for the visit and rotating it to the
/// back if it still has both work and no deficit left. Tenants whose
/// queues empty leave the round (and forfeit their deficit — deficits
/// only persist across visits while work is actually waiting).
fn pop_quantum(state: &mut QueueState, quantum: usize) -> Vec<Pending> {
    let mut batch = Vec::new();
    let rounds = state.round.len();
    for _ in 0..rounds.max(1) {
        let Some(&tenant) = state.round.front() else { return batch };
        let Some(queue) = state.queues.get_mut(&tenant) else {
            state.round.pop_front();
            state.deficits.remove(&tenant);
            continue;
        };
        if queue.is_empty() {
            state.round.pop_front();
            state.deficits.remove(&tenant);
            continue;
        }
        let deficit = state.deficits.entry(tenant).or_insert(0);
        *deficit += quantum.max(1);
        while *deficit > 0 {
            let Some(pending) = queue.pop_front() else { break };
            *deficit -= 1;
            state.queued_total -= 1;
            batch.push(pending);
        }
        if queue.is_empty() {
            state.round.pop_front();
            state.deficits.remove(&tenant);
        } else {
            // Quantum spent with work left: rotate to the back.
            state.round.rotate_left(1);
        }
        return batch;
    }
    batch
}

fn execute(
    inner: &Arc<Inner>,
    pending: Pending,
    sessions: &mut HashMap<u64, SessionEntry>,
    next_wire_session: &mut u64,
) {
    let Pending { header, request, conn, enqueued } = pending;
    let waited = enqueued.elapsed();
    salo_trace::record_since("gateway.tenant_queue_wait", "gateway", enqueued, header.tenant);
    inner
        .server
        .metrics()
        .histogram(&format!("gateway.tenant.{}.queue_wait_ns", header.tenant))
        .record(waited.as_nanos().min(u128::from(u64::MAX)) as u64);
    if waited > inner.options.service_timeout {
        inner.timed_out.fetch_add(1, Ordering::Relaxed);
        send_error(
            inner,
            &conn,
            header,
            ErrorCode::TimedOut,
            "request spent its service deadline in the dispatch queue",
            None,
        );
        return;
    }
    let budget = inner.options.service_timeout - waited;

    match request {
        Request::Prefill { pattern, shape, heads } => {
            let serve_request = match ServeRequest::new(pattern, shape, heads) {
                Ok(r) => r,
                Err(e) => return send_serve_error(inner, &conn, header, &e),
            };
            if let Err(e) = inner.server.submit_for(header.tenant, serve_request) {
                return send_serve_error(inner, &conn, header, &e);
            }
            // The dispatcher is the server's only layer client, so the
            // next ordered response answers this submission.
            let response = match inner.server.recv() {
                Ok(r) => r,
                Err(e) => return send_serve_error(inner, &conn, header, &e),
            };
            match response.result {
                Ok(run) => {
                    let heads = run
                        .heads
                        .iter()
                        .map(|h| PrefillHead {
                            output: h.output.clone(),
                            raw: raw_bits(&h.raw),
                            weights_q16: h.weights_q16.clone(),
                        })
                        .collect();
                    send_response(
                        inner,
                        &conn,
                        header,
                        &Response::PrefillDone {
                            heads,
                            sim_time_s: run.total_time_s,
                            sim_energy_j: run.total_energy_j,
                        },
                    );
                }
                Err(e) => send_serve_error(inner, &conn, header, &e),
            }
        }
        Request::Open { pattern, head_dim, num_heads, prompt } => {
            let session_request = SessionRequest { pattern, head_dim, num_heads, prompt };
            let handle = match inner.server.open_session_for(header.tenant, session_request) {
                Ok(h) => h,
                Err(e) => return send_serve_error(inner, &conn, header, &e),
            };
            match recv_within(inner, &handle, budget) {
                Ok(SessionEvent::Opened { result: Ok(info), .. }) => {
                    let wire_id = *next_wire_session;
                    *next_wire_session += 1;
                    sessions.insert(
                        wire_id,
                        SessionEntry { handle, conn: Arc::clone(&conn), opened_by: header },
                    );
                    send_response(
                        inner,
                        &conn,
                        header,
                        &Response::Opened {
                            session: wire_id,
                            min_step: info.min_step as u64,
                            position: info.position as u64,
                            capacity: info.capacity as u64,
                        },
                    );
                }
                Ok(SessionEvent::Opened { result: Err(e), .. }) => {
                    send_serve_error(inner, &conn, header, &e);
                }
                Ok(_) => send_error(
                    inner,
                    &conn,
                    header,
                    ErrorCode::Internal,
                    "unexpected event before the open handshake",
                    None,
                ),
                Err(e) => {
                    let _ = inner.server.close_session(handle.id());
                    send_serve_error(inner, &conn, header, &e);
                }
            }
        }
        Request::Step { session, token } => {
            // Take the entry out for the duration of the step; it goes
            // back unless the session terminated under us.
            let entry = match sessions.remove(&session) {
                Some(entry) if entry.conn.id == conn.id => entry,
                other => {
                    if let Some(entry) = other {
                        sessions.insert(session, entry); // someone else's session
                    }
                    return send_error(
                        inner,
                        &conn,
                        header,
                        ErrorCode::UnknownSession,
                        &format!("wire session {session} is not open on this connection"),
                        None,
                    );
                }
            };
            if let Err(e) = inner.server.step_session(entry.handle.id(), token) {
                if !matches!(e, ServeError::UnknownSession { .. }) {
                    sessions.insert(session, entry);
                }
                return send_serve_error(inner, &conn, header, &e);
            }
            let mut keep = true;
            loop {
                match recv_within(inner, &entry.handle, budget) {
                    Ok(SessionEvent::Step { result: Ok(step), .. }) => {
                        let heads = step.heads.iter().map(WireHeadStep::from).collect();
                        send_response(
                            inner,
                            &conn,
                            header,
                            &Response::Stepped { session, position: step.position as u64, heads },
                        );
                        break;
                    }
                    Ok(SessionEvent::Step { result: Err(e), .. }) => {
                        send_serve_error(inner, &conn, header, &e);
                        break;
                    }
                    Ok(SessionEvent::Closed { position, .. }) => {
                        keep = false;
                        send_response(
                            inner,
                            &conn,
                            header,
                            &Response::Closed { session, position: position.map(|p| p as u64) },
                        );
                        break;
                    }
                    Ok(SessionEvent::Opened { .. }) => continue,
                    Err(e) => {
                        if matches!(e, ServeError::Closed) {
                            keep = false;
                        }
                        send_serve_error(inner, &conn, header, &e);
                        break;
                    }
                }
            }
            if keep {
                sessions.insert(session, entry);
            }
        }
        Request::Close { session } => {
            let valid = sessions.get(&session).is_some_and(|entry| entry.conn.id == conn.id);
            if !valid {
                return send_error(
                    inner,
                    &conn,
                    header,
                    ErrorCode::UnknownSession,
                    &format!("wire session {session} is not open on this connection"),
                    None,
                );
            }
            let entry = sessions.remove(&session).expect("checked above");
            let _ = inner.server.close_session(entry.handle.id());
            let position = wait_closed(&entry.handle, budget);
            send_response(
                inner,
                &conn,
                header,
                &Response::Closed { session, position: position.map(|p| p as u64) },
            );
        }
        Request::Stats | Request::Shutdown => {
            // Handled inline by the reader; unreachable through the queue.
        }
    }
}

/// Converts a fixed-point matrix to its raw bit patterns for the wire.
fn raw_bits(m: &salo_kernels::Matrix<salo_fixed::Fix16x8>) -> salo_kernels::Matrix<i16> {
    let data = m.as_slice().iter().map(|x| x.raw()).collect();
    salo_kernels::Matrix::from_vec(m.rows(), m.cols(), data)
        .expect("same shape as the source matrix")
}

/// `recv_timeout` that counts timeouts in the gateway's report.
fn recv_within(
    inner: &Arc<Inner>,
    handle: &DecodeSessionHandle,
    budget: Duration,
) -> Result<SessionEvent, ServeError> {
    let result = handle.recv_timeout(budget);
    if matches!(result, Err(ServeError::TimedOut)) {
        inner.timed_out.fetch_add(1, Ordering::Relaxed);
    }
    result
}

/// Drains session events until the terminal `Closed`, returning its
/// position. Bounded: gives up (returning `None`) at the deadline.
fn wait_closed(handle: &DecodeSessionHandle, deadline: Duration) -> Option<usize> {
    let start = Instant::now();
    loop {
        let left = deadline.checked_sub(start.elapsed())?;
        match handle.recv_timeout(left.max(Duration::from_millis(1))) {
            Ok(SessionEvent::Closed { position, .. }) => return position,
            Ok(_) => continue,
            Err(_) => return None,
        }
    }
}

// ---------------------------------------------------------------------
// replies
// ---------------------------------------------------------------------

fn send_response(inner: &Arc<Inner>, conn: &Arc<ConnShared>, header: Header, resp: &Response) {
    if !conn.alive.load(Ordering::Acquire) {
        return;
    }
    let started = Instant::now();
    let frame = encode_response(header, resp);
    let ok = {
        let mut stream = match conn.stream.lock() {
            Ok(s) => s,
            Err(_) => return,
        };
        wire::write_frame(&mut *stream, &frame).is_ok()
    };
    salo_trace::record_since("gateway.write_frame", "gateway", started, conn.id);
    if ok {
        inner.frames_written.fetch_add(1, Ordering::Relaxed);
    } else {
        conn.alive.store(false, Ordering::Release);
    }
}

fn send_error(
    inner: &Arc<Inner>,
    conn: &Arc<ConnShared>,
    header: Header,
    code: ErrorCode,
    message: &str,
    retry_after_ms: Option<u64>,
) {
    send_response(
        inner,
        conn,
        header,
        &Response::Error(ErrorFrame { code, message: message.to_owned(), retry_after_ms }),
    );
}

fn send_serve_error(inner: &Arc<Inner>, conn: &Arc<ConnShared>, header: Header, e: &ServeError) {
    let code = match e {
        ServeError::InvalidRequest { .. } => ErrorCode::Invalid,
        ServeError::UnknownSession { .. } => ErrorCode::UnknownSession,
        ServeError::Draining => ErrorCode::Draining,
        ServeError::TimedOut => ErrorCode::TimedOut,
        _ => ErrorCode::Internal,
    };
    send_error(inner, conn, header, code, &e.to_string(), None);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drr_interleaves_tenants_and_carries_deficit() {
        let conn = Arc::new(ConnShared {
            id: 1,
            stream: Mutex::new(TcpStream::connect(any_listener()).expect("loopback")),
            alive: AtomicBool::new(true),
        });
        let mut state = QueueState::default();
        // Tenant 1 floods 6 requests; tenant 2 queues 2.
        for (tenant, n) in [(1u64, 6usize), (2, 2)] {
            for i in 0..n {
                let queue = state.queues.entry(tenant).or_default();
                if queue.is_empty() && !state.round.contains(&tenant) {
                    state.round.push_back(tenant);
                }
                queue.push_back(Pending {
                    header: Header { tenant, request_id: i as u64 },
                    request: Request::Stats,
                    conn: Arc::clone(&conn),
                    enqueued: Instant::now(),
                });
                state.queued_total += 1;
            }
        }
        let mut order = Vec::new();
        while state.queued_total > 0 {
            for p in pop_quantum(&mut state, 2) {
                order.push(p.header.tenant);
            }
        }
        // Visits alternate a quantum at a time until tenant 2 drains:
        // 1,1 then 2,2 then the rest of tenant 1's backlog.
        assert_eq!(order, vec![1, 1, 2, 2, 1, 1, 1, 1]);
    }

    fn any_listener() -> SocketAddr {
        // A throwaway loopback listener so the test can build a
        // TcpStream without a live gateway.
        static LISTENER: std::sync::OnceLock<(TcpListener, SocketAddr)> =
            std::sync::OnceLock::new();
        let (_, addr) = LISTENER.get_or_init(|| {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let addr = l.local_addr().expect("local addr");
            (l, addr)
        });
        *addr
    }
}
