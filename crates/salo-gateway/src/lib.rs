//! A network front door for the [`salo-serve`](salo_serve) runtime.
//!
//! [`SaloServer`](salo_serve::SaloServer) is an in-process library: every
//! client shares the server's address space, admission is a function
//! call, and overload shows up as unbounded queue growth in the caller.
//! Serving for real means a socket between untrusted clients and the
//! accelerator pool — and a socket changes the problem: requests arrive
//! malformed, tenants misbehave, connections die mid-session, and the
//! process must drain without corrupting in-flight generations. This
//! crate supplies that front end, std-only (threads + `TcpListener`, no
//! async runtime, no serde):
//!
//! * **[`wire`]** — a length-prefixed binary protocol (`u32` length,
//!   version/opcode/tenant/request-id header) covering prefill, decode
//!   sessions, stats, and drain. Every decode path is
//!   allocation-guarded and returns typed [`wire::WireError`]s — never
//!   panics — under proptest-driven malformed-input tests.
//! * **[`Gateway`]** — accepts connections, decodes frames, and maps
//!   them onto a [`SaloServer`](salo_serve::SaloServer) it owns.
//!   Admission control bounds each tenant's queue
//!   ([`GatewayOptions::tenant_quota`]) and the global backlog;
//!   rejected work gets a typed `Overloaded` frame with a
//!   `retry_after_ms` hint instead of silent queue growth. A
//!   deficit-round-robin dispatcher serves tenants fairly: a flooding
//!   tenant is rejected at its own quota while a well-behaved one's
//!   queue wait stays bounded. [`Gateway::shutdown`] drains gracefully —
//!   stop accepting, reject new work as `Draining`, finish what's
//!   queued, close every live decode session with a terminal `Closed`
//!   frame — under a bounded deadline.
//! * **[`GatewayClient`]** — a blocking, pipelining client used by the
//!   integration tests and the `gateway_bench` closed-loop driver.
//!
//! The protocol is carried bit-exactly (floats travel as IEEE-754 bit
//! patterns, fixed-point rows as raw `i16`), so a decode session driven
//! over localhost TCP produces byte-identical outputs to
//! [`Salo::decode_session`](salo_core::Salo::decode_session) — the
//! integration tests assert it. Shard reports travel whole (sparse
//! log-bucket histograms included), so a multi-process bench merges them
//! bucket-exactly with
//! [`ServeReport::merged_with`](salo_serve::ServeReport::merged_with).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod client;
mod gateway;
pub mod wire;

pub use client::{GatewayClient, GatewayError, OpenedSession};
pub use gateway::{Gateway, GatewayOptions, GatewayReport};
