//! A blocking, pipelining gateway client.
//!
//! One [`GatewayClient`] owns one TCP connection and one tenant
//! identity. Requests can be fired without waiting
//! ([`send`](GatewayClient::send)) — the flooding half of the fairness
//! tests — or driven call/response ([`call`](GatewayClient::call) and
//! the typed helpers), which match replies by `request_id` and buffer
//! any interleaved frames (e.g. a drain's terminal `Closed`) for later
//! [`recv`](GatewayClient::recv) calls.

use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use salo_kernels::Qkv;
use salo_patterns::{AttentionShape, HybridPattern};
use salo_serve::{ServeReport, TokenQkv};

use crate::wire::{
    self, encode_request, ErrorFrame, Header, PrefillHead, Request, Response, WireError,
    WireHeadStep,
};

/// Client-side failures.
#[derive(Debug)]
pub enum GatewayError {
    /// The wire layer failed (socket error, malformed response).
    Wire(WireError),
    /// The gateway answered with a typed error frame.
    Remote(ErrorFrame),
    /// The gateway answered with a frame the request cannot accept
    /// (wrong variant for the opcode we sent).
    Protocol(String),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Wire(e) => write!(f, "wire error: {e}"),
            GatewayError::Remote(e) => {
                write!(f, "gateway error {:?}: {}", e.code, e.message)
            }
            GatewayError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<WireError> for GatewayError {
    fn from(e: WireError) -> Self {
        GatewayError::Wire(e)
    }
}

/// A session opened over the wire: the gateway's session id plus the
/// open handshake's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenedSession {
    /// Wire session id for [`GatewayClient::step`] /
    /// [`GatewayClient::close`].
    pub session: u64,
    /// First decodable position.
    pub min_step: u64,
    /// Position the next step will produce.
    pub position: u64,
    /// Sequence capacity.
    pub capacity: u64,
}

/// One connection to a gateway, bound to a tenant id.
#[derive(Debug)]
pub struct GatewayClient {
    stream: TcpStream,
    tenant: u64,
    next_id: u64,
    /// Replies read while waiting for a different request_id.
    unmatched: VecDeque<(Header, Response)>,
}

impl GatewayClient {
    /// Connects to a gateway, tagging all requests with `tenant`.
    ///
    /// # Errors
    ///
    /// Returns the connect error as [`GatewayError::Wire`].
    pub fn connect<A: ToSocketAddrs>(addr: A, tenant: u64) -> Result<Self, GatewayError> {
        let stream = TcpStream::connect(addr).map_err(WireError::from)?;
        let _ = stream.set_nodelay(true);
        Ok(GatewayClient { stream, tenant, next_id: 1, unmatched: VecDeque::new() })
    }

    /// Sets a socket read deadline for subsequent receives — keeps the
    /// overload tests hang-free even if a reply never comes.
    ///
    /// # Errors
    ///
    /// Returns the setsockopt failure as [`GatewayError::Wire`].
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), GatewayError> {
        self.stream.set_read_timeout(timeout).map_err(WireError::from)?;
        Ok(())
    }

    /// Fires a request without waiting for its reply; returns the
    /// assigned `request_id`. Pipelining: a flooding client calls this
    /// in a tight loop and harvests replies (acceptances and
    /// `Overloaded` rejections alike) afterwards with
    /// [`recv`](Self::recv).
    ///
    /// # Errors
    ///
    /// Returns the socket write failure.
    pub fn send(&mut self, request: &Request) -> Result<u64, GatewayError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_request(Header { tenant: self.tenant, request_id: id }, request);
        wire::write_frame(&mut self.stream, &frame)?;
        Ok(id)
    }

    /// Blocks for the next response frame — buffered leftovers first,
    /// then the socket.
    ///
    /// # Errors
    ///
    /// Returns read/decode failures (a read deadline surfaces as
    /// [`WireError::Io`]).
    pub fn recv(&mut self) -> Result<(Header, Response), GatewayError> {
        if let Some(buffered) = self.unmatched.pop_front() {
            return Ok(buffered);
        }
        let payload = wire::read_frame(&mut self.stream)?;
        Ok(wire::decode_response(&payload)?)
    }

    /// Sends `request` and blocks for *its* response, buffering any
    /// interleaved frames for later [`recv`](Self::recv) calls. An
    /// error frame with the matching id returns as
    /// [`GatewayError::Remote`].
    ///
    /// # Errors
    ///
    /// Wire failures, remote error frames, or mismatched reply variants.
    pub fn call(&mut self, request: &Request) -> Result<Response, GatewayError> {
        let id = self.send(request)?;
        loop {
            if let Some(at) = self.unmatched.iter().position(|(h, _)| h.request_id == id) {
                let (_, response) = self.unmatched.remove(at).expect("position just found");
                return finish(response);
            }
            let payload = wire::read_frame(&mut self.stream)?;
            let (header, response) = wire::decode_response(&payload)?;
            if header.request_id == id {
                return finish(response);
            }
            self.unmatched.push_back((header, response));
        }
    }

    /// One-shot prefill. Returns the per-head outputs and the simulated
    /// layer cost.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call).
    pub fn prefill(
        &mut self,
        pattern: HybridPattern,
        shape: AttentionShape,
        heads: Vec<Qkv>,
    ) -> Result<(Vec<PrefillHead>, f64, f64), GatewayError> {
        match self.call(&Request::Prefill { pattern, shape, heads })? {
            Response::PrefillDone { heads, sim_time_s, sim_energy_j } => {
                Ok((heads, sim_time_s, sim_energy_j))
            }
            other => Err(unexpected("PrefillDone", &other)),
        }
    }

    /// Opens a decode session.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call).
    pub fn open_session(
        &mut self,
        pattern: HybridPattern,
        head_dim: usize,
        num_heads: usize,
        prompt: Vec<Qkv>,
    ) -> Result<OpenedSession, GatewayError> {
        match self.call(&Request::Open { pattern, head_dim, num_heads, prompt })? {
            Response::Opened { session, min_step, position, capacity } => {
                Ok(OpenedSession { session, min_step, position, capacity })
            }
            other => Err(unexpected("Opened", &other)),
        }
    }

    /// Decodes one token; returns the produced position and per-head
    /// outputs.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call); a concurrent close surfaces as
    /// [`GatewayError::Protocol`] carrying the `Closed` frame's variant
    /// name.
    pub fn step(
        &mut self,
        session: u64,
        token: Vec<TokenQkv>,
    ) -> Result<(u64, Vec<WireHeadStep>), GatewayError> {
        match self.call(&Request::Step { session, token })? {
            Response::Stepped { position, heads, .. } => Ok((position, heads)),
            other => Err(unexpected("Stepped", &other)),
        }
    }

    /// Closes a session; returns its final position if the runtime
    /// still knew it.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call).
    pub fn close(&mut self, session: u64) -> Result<Option<u64>, GatewayError> {
        match self.call(&Request::Close { session })? {
            Response::Closed { position, .. } => Ok(position),
            other => Err(unexpected("Closed", &other)),
        }
    }

    /// Fetches the gateway's live metrics registry as JSON.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call).
    pub fn stats_json(&mut self) -> Result<String, GatewayError> {
        match self.call(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Asks the gateway to drain and shut down, blocking until its final
    /// [`ServeReport`] arrives — the collection step of a multi-process
    /// bench. Frames delivered while the drain runs (terminal `Closed`s
    /// for sessions this connection left open) are absorbed.
    ///
    /// # Errors
    ///
    /// As [`call`](Self::call).
    pub fn shutdown_and_report(&mut self) -> Result<ServeReport, GatewayError> {
        let id = self.send(&Request::Shutdown)?;
        loop {
            let payload = wire::read_frame(&mut self.stream)?;
            let (header, response) = wire::decode_response(&payload)?;
            match response {
                Response::Report { report } if header.request_id == id => return Ok(*report),
                Response::Error(err) if header.request_id == id => {
                    return Err(GatewayError::Remote(err))
                }
                _ => continue, // drain-time Closed frames et al.
            }
        }
    }
}

fn finish(response: Response) -> Result<Response, GatewayError> {
    match response {
        Response::Error(err) => Err(GatewayError::Remote(err)),
        other => Ok(other),
    }
}

fn unexpected(wanted: &str, got: &Response) -> GatewayError {
    let variant = match got {
        Response::PrefillDone { .. } => "PrefillDone",
        Response::Opened { .. } => "Opened",
        Response::Stepped { .. } => "Stepped",
        Response::Closed { .. } => "Closed",
        Response::Stats { .. } => "Stats",
        Response::Report { .. } => "Report",
        Response::Error(_) => "Error",
    };
    GatewayError::Protocol(format!("expected {wanted}, got {variant}"))
}
