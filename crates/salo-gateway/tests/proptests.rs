//! Property tests for the wire protocol: encode/decode is an exact
//! round trip over arbitrary messages, and the decoder treats arbitrary
//! bytes — truncations, corruptions, garbage — as typed errors, never
//! panics or runaway allocations.

use proptest::prelude::*;
use salo_gateway::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, ErrorCode,
    ErrorFrame, Header, PrefillHead, Request, Response, WireHeadStep,
};
use salo_kernels::{Matrix, Qkv};
use salo_patterns::{
    longformer, sliding_only, AttentionShape, BlockLayout, HybridPattern, PatternTerm, SupportRuns,
};
use salo_serve::{HistogramSnapshot, LatencyStats, ServeReport, TenantCounters, TokenQkv};

/// Splitmix-style generator so message content is a pure function of the
/// proptest-supplied seed.
fn mix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn f32_of(seed: &mut u64) -> f32 {
    // Finite, sign-varied, wide-exponent values (bit-exactness is the
    // point, so cover more than round numbers).
    let raw = mix(seed);
    ((raw as i32 % 100_000) as f32) * 2.0f32.powi((raw >> 32) as i32 % 10 - 5)
}

fn floats(seed: &mut u64, len: usize) -> Vec<f32> {
    (0..len).map(|_| f32_of(seed)).collect()
}

/// A valid pattern family per seed, covering every term codec: window,
/// global, strided, block-sparse (all three layouts via presets/terms),
/// random blocks, and explicit support runs.
fn arb_pattern(seed: u64) -> HybridPattern {
    let n = 16 + (seed % 3) as usize * 8;
    match seed % 6 {
        0 => sliding_only(n, 3 + (seed % 2) as usize * 2).expect("valid window"),
        1 => longformer(n, 4, 2).expect("valid longformer"),
        2 => HybridPattern::from_terms(n, vec![PatternTerm::Strided { stride: 4, local: 4 }])
            .expect("valid strided"),
        3 => HybridPattern::from_terms(
            n,
            vec![
                PatternTerm::BlockSparse {
                    block_rows: 4,
                    layout: BlockLayout::Banded { radius: 1 + (seed % 2) as usize },
                },
                PatternTerm::Global { token: (seed as usize) % n },
            ],
        )
        .expect("valid block-sparse"),
        4 => HybridPattern::from_terms(
            n,
            vec![
                PatternTerm::BlockSparse {
                    block_rows: 8,
                    layout: BlockLayout::Explicit(vec![(0, 0), (1, 0), (n / 8 - 1, 1)]),
                },
                PatternTerm::RandomBlocks { count: 2, seed },
            ],
        )
        .expect("valid explicit blocks"),
        _ => {
            let rows: Vec<Vec<(u32, u32)>> =
                (0..n).map(|i| vec![(0, i as u32 % n as u32 + 1)]).collect();
            HybridPattern::from_terms(
                n,
                vec![PatternTerm::Support(
                    SupportRuns::from_row_ranges(n, &rows).expect("valid runs"),
                )],
            )
            .expect("valid support")
        }
    }
}

fn arb_qkv(seed: &mut u64, rows: usize, dim: usize) -> Qkv {
    Qkv::random(rows, dim, mix(seed))
}

fn arb_token(seed: &mut u64, dim: usize) -> TokenQkv {
    TokenQkv { q: floats(seed, dim), k: floats(seed, dim), v: floats(seed, dim) }
}

fn arb_request(variant: u8, mut seed: u64) -> Request {
    let dim = 4 + (seed % 2) as usize * 4;
    match variant % 6 {
        0 => {
            let pattern = arb_pattern(seed);
            let n = pattern.n();
            let heads = 1 + (seed % 2) as usize;
            let shape = AttentionShape::new(n, dim, heads).expect("valid shape");
            let heads = (0..heads).map(|_| arb_qkv(&mut seed, n, dim)).collect();
            Request::Prefill { pattern, shape, heads }
        }
        1 => {
            let pattern = arb_pattern(seed);
            let rows = pattern.n() / 2;
            let num_heads = 1 + (seed % 3) as usize;
            let prompt = (0..num_heads).map(|_| arb_qkv(&mut seed, rows, dim)).collect();
            Request::Open { pattern, head_dim: dim, num_heads, prompt }
        }
        2 => {
            let heads = 1 + (seed % 3) as usize;
            let token = (0..heads).map(|_| arb_token(&mut seed, dim)).collect();
            Request::Step { session: mix(&mut seed), token }
        }
        3 => Request::Close { session: mix(&mut seed) },
        4 => Request::Stats,
        _ => Request::Shutdown,
    }
}

fn arb_hist(seed: &mut u64, samples: usize) -> HistogramSnapshot {
    let mut hist = HistogramSnapshot::default();
    for _ in 0..samples {
        hist.record(mix(seed) % 1_000_000_007);
    }
    hist
}

fn arb_report(seed: &mut u64) -> ServeReport {
    let mut tenants = std::collections::BTreeMap::new();
    for t in 0..(*seed % 4) {
        tenants.insert(
            t,
            TenantCounters {
                requests: mix(seed) % 1000,
                rejections: mix(seed) % 100,
                decode_steps: mix(seed) % 10_000,
            },
        );
    }
    ServeReport {
        requests: mix(seed) % 10_000,
        errors: mix(seed) % 100,
        wall_s: (mix(seed) % 10_000) as f64 / 997.0,
        throughput_rps: (mix(seed) % 100_000) as f64 / 31.0,
        latency: LatencyStats {
            count: mix(seed) % 1000,
            mean_s: (mix(seed) % 1000) as f64 / 1e4,
            p50_s: (mix(seed) % 1000) as f64 / 1e4,
            p99_s: (mix(seed) % 1000) as f64 / 1e4,
            max_s: (mix(seed) % 1000) as f64 / 1e4,
        },
        latency_hist: arb_hist(seed, (*seed % 50) as usize),
        batches: mix(seed) % 1000,
        mean_batch_size: (mix(seed) % 64) as f64 / 7.0,
        max_queue_depth: (mix(seed) % 64) as usize,
        sim_cycles: mix(seed),
        sim_energy_j: (mix(seed) % 1_000_000) as f64 * 1e-9,
        per_worker_requests: (0..(*seed % 4)).map(|_| mix(seed) % 500).collect(),
        decode_sessions: mix(seed) % 100,
        decode_steps: mix(seed) % 10_000,
        decode_step_latency_hist: arb_hist(seed, (*seed % 30) as usize),
        decode_peak_resident_pages: mix(seed) % 64,
        tenants,
        ..Default::default()
    }
}

fn arb_response(variant: u8, mut seed: u64) -> Response {
    let dim = 4 + (seed % 2) as usize * 4;
    match variant % 7 {
        0 => {
            let rows = 4 + (seed % 8) as usize;
            let heads = (0..1 + (seed % 2))
                .map(|_| PrefillHead {
                    output: Matrix::from_vec(rows, dim, floats(&mut seed, rows * dim))
                        .expect("consistent shape"),
                    raw: Matrix::from_vec(
                        rows,
                        dim,
                        (0..rows * dim).map(|_| mix(&mut seed) as i16).collect(),
                    )
                    .expect("consistent shape"),
                    weights_q16: (0..rows).map(|_| mix(&mut seed) as i64 % (1 << 40)).collect(),
                })
                .collect();
            Response::PrefillDone {
                heads,
                sim_time_s: (mix(&mut seed) % 1_000_000) as f64 * 1e-8,
                sim_energy_j: (mix(&mut seed) % 1_000_000) as f64 * 1e-10,
            }
        }
        1 => Response::Opened {
            session: mix(&mut seed),
            min_step: mix(&mut seed) % 64,
            position: mix(&mut seed) % 64,
            capacity: 64 + mix(&mut seed) % 64,
        },
        2 => {
            let heads = (0..1 + (seed % 3))
                .map(|_| WireHeadStep {
                    output: floats(&mut seed, dim),
                    raw: if seed.is_multiple_of(2) {
                        Some((0..dim).map(|_| mix(&mut seed) as i16).collect())
                    } else {
                        None
                    },
                    weight_q16: (seed % 3 != 1).then(|| mix(&mut seed) as i64 % (1 << 30)),
                    saturation_events: mix(&mut seed) % 16,
                })
                .collect();
            Response::Stepped { session: mix(&mut seed), position: mix(&mut seed) % 4096, heads }
        }
        3 => Response::Closed {
            session: mix(&mut seed),
            position: (seed.is_multiple_of(2)).then(|| mix(&mut seed) % 4096),
        },
        4 => Response::Stats {
            json: format!("{{\"counters\":{{\"x\":{}}}}}", mix(&mut seed) % 100_000),
        },
        5 => Response::Report { report: Box::new(arb_report(&mut seed)) },
        _ => Response::Error(ErrorFrame {
            code: match seed % 7 {
                0 => ErrorCode::BadFrame,
                1 => ErrorCode::Overloaded,
                2 => ErrorCode::Draining,
                3 => ErrorCode::TimedOut,
                4 => ErrorCode::UnknownSession,
                5 => ErrorCode::Invalid,
                _ => ErrorCode::Internal,
            },
            message: format!("error {}", mix(&mut seed) % 1000),
            retry_after_ms: (seed.is_multiple_of(2)).then(|| mix(&mut seed) % 10_000),
        }),
    }
}

proptest! {
    #[test]
    fn requests_roundtrip_exactly(
        variant in 0u8..6,
        seed in any::<u64>(),
        tenant in any::<u64>(),
        request_id in any::<u64>(),
    ) {
        let request = arb_request(variant, seed);
        let header = Header { tenant, request_id };
        let frame = encode_request(header, &request);
        let (decoded_header, decoded) = decode_request(&frame[4..]).expect("valid encoding");
        prop_assert_eq!(decoded_header, header);
        prop_assert_eq!(decoded, request);
    }

    #[test]
    fn responses_roundtrip_exactly(
        variant in 0u8..7,
        seed in any::<u64>(),
        tenant in any::<u64>(),
        request_id in any::<u64>(),
    ) {
        let response = arb_response(variant, seed);
        let header = Header { tenant, request_id };
        let frame = encode_response(header, &response);
        let (decoded_header, decoded) = decode_response(&frame[4..]).expect("valid encoding");
        prop_assert_eq!(decoded_header, header);
        prop_assert_eq!(decoded, response);
    }

    #[test]
    fn every_strict_prefix_is_a_typed_error(
        variant in 0u8..6,
        seed in any::<u64>(),
    ) {
        let request = arb_request(variant, seed);
        let frame = encode_request(Header::default(), &request);
        let payload = &frame[4..];
        // Every strict prefix must decode to Err — a message can never
        // be mistaken for a truncation of itself.
        let stride = (payload.len() / 97).max(1);
        let mut cuts: Vec<usize> = (0..payload.len()).step_by(stride).collect();
        // Always include the boundary-adjacent cuts.
        cuts.extend([payload.len().saturating_sub(1), payload.len().saturating_sub(2)]);
        for cut in cuts {
            if cut >= payload.len() {
                continue;
            }
            prop_assert!(
                decode_request(&payload[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded successfully",
                payload.len()
            );
        }
    }

    #[test]
    fn corrupted_bytes_never_panic(
        variant in 0u8..7,
        seed in any::<u64>(),
        flip_at in any::<u64>(),
        flip_mask in 1u8..255,
    ) {
        let response = arb_response(variant, seed);
        let frame = encode_response(Header::default(), &response);
        let mut payload = frame[4..].to_vec();
        let at = (flip_at as usize) % payload.len();
        payload[at] ^= flip_mask;
        // Any outcome but a panic is acceptable; errors must be typed.
        let _ = decode_response(&payload);
        let _ = decode_request(&payload);
    }

    #[test]
    fn garbage_streams_never_panic_or_overallocate(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Framing layer: a hostile length prefix must be refused before
        // allocation; short streams must surface as typed errors.
        let _ = read_frame(&mut bytes.as_slice());
        // Codec layer: arbitrary payloads decode to Ok or typed Err.
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }
}
